#include "atpg/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "enrich/enrichment.hpp"
#include "faultsim/batch_sim.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

struct Fixture {
  Netlist nl = benchmark_circuit("b09_like");
  TargetSets sets;
  GenerationResult gen;
  Fixture() {
    TargetSetConfig cfg;
    cfg.n_p = 800;
    cfg.n_p0 = 120;
    sets = build_target_sets(nl, cfg);
    gen = generate_tests(nl, sets.p0, sets.p1, {});
  }
};

TEST(Ordering, IsAPermutation) {
  Fixture fx;
  const OrderingResult r =
      order_tests_by_coverage(fx.nl, fx.gen.tests, fx.sets.p0);
  ASSERT_EQ(r.order.size(), fx.gen.tests.size());
  std::vector<std::size_t> sorted = r.order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Ordering, CumulativeCoverageIsMonotoneAndEndsAtTotal) {
  Fixture fx;
  const OrderingResult r =
      order_tests_by_coverage(fx.nl, fx.gen.tests, fx.sets.p0);
  ASSERT_EQ(r.cumulative_detected.size(), fx.gen.tests.size());
  for (std::size_t i = 0; i + 1 < r.cumulative_detected.size(); ++i) {
    EXPECT_LE(r.cumulative_detected[i], r.cumulative_detected[i + 1]);
  }
  BatchSimulator sim(fx.nl);
  const auto det = sim.detects_any(fx.gen.tests, fx.sets.p0);
  const std::size_t total =
      static_cast<std::size_t>(std::count(det.begin(), det.end(), true));
  EXPECT_EQ(r.cumulative_detected.back(), total);
}

TEST(Ordering, GreedyFirstPickIsTheBestSingleTest) {
  Fixture fx;
  const OrderingResult r =
      order_tests_by_coverage(fx.nl, fx.gen.tests, fx.sets.p0);
  BatchSimulator sim(fx.nl);
  std::size_t best_single = 0;
  for (const auto& t : fx.gen.tests) {
    const TwoPatternTest one[] = {t};
    const auto det = sim.detects_any(one, fx.sets.p0);
    best_single = std::max<std::size_t>(
        best_single,
        static_cast<std::size_t>(std::count(det.begin(), det.end(), true)));
  }
  EXPECT_EQ(r.cumulative_detected.front(), best_single);
}

TEST(Ordering, OrderedPrefixDominatesOriginalPrefix) {
  // The whole point: after k tests, the greedy order has detected at least
  // as many faults as the original order, for every k.
  Fixture fx;
  const OrderingResult r =
      order_tests_by_coverage(fx.nl, fx.gen.tests, fx.sets.p0);
  BatchSimulator sim(fx.nl);
  const auto ordered = apply_order(fx.gen.tests, r.order);
  for (std::size_t k = 1; k <= fx.gen.tests.size(); k += 7) {
    const auto det_orig = sim.detects_any(
        std::span<const TwoPatternTest>(fx.gen.tests.data(), k), fx.sets.p0);
    const auto det_ord = sim.detects_any(
        std::span<const TwoPatternTest>(ordered.data(), k), fx.sets.p0);
    const auto count = [](const std::vector<bool>& v) {
      return std::count(v.begin(), v.end(), true);
    };
    EXPECT_GE(count(det_ord), count(det_orig)) << "prefix " << k;
  }
}

TEST(Ordering, ApplyOrderValidation) {
  Fixture fx;
  std::vector<std::size_t> bad(fx.gen.tests.size(), 0);
  EXPECT_NO_THROW(apply_order(fx.gen.tests, bad));  // duplicate but in range
  bad.pop_back();
  EXPECT_THROW(apply_order(fx.gen.tests, bad), std::invalid_argument);
  bad.assign(fx.gen.tests.size(), fx.gen.tests.size() + 1);
  EXPECT_THROW(apply_order(fx.gen.tests, bad), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
