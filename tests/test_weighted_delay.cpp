// Tests for the weighted (non-unit) delay model extension.
#include <gtest/gtest.h>

#include <functional>

#include "enrich/target_sets.hpp"
#include "gen/registry.hpp"
#include "paths/distance.hpp"
#include "paths/enumerate.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

using testutil::named_path;

TEST(WeightedDelay, UnitWeightsMatchDefaultModel) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel unit(nl);
  const LineDelayModel explicit_unit(nl, std::vector<int>(nl.node_count(), 1));
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    EXPECT_EQ(unit.stem_weight(id), explicit_unit.stem_weight(id));
  }
  const Path p = named_path(nl, {"G0", "G14", "G8", "G15", "G9", "G11", "G17"});
  EXPECT_EQ(unit.complete_length(p.nodes), explicit_unit.complete_length(p.nodes));
}

TEST(WeightedDelay, LengthsUseStemWeights) {
  const Netlist nl = benchmark_circuit("s27");
  std::vector<int> w(nl.node_count(), 2);
  w[nl.id_of("G14")] = 7;
  const LineDelayModel dm(nl, w);
  // G0(2) + G14(7) + branch(1) + G10(2) + output-branch... G10 single
  // consumer -> complete = partial.
  const Path p = named_path(nl, {"G0", "G14", "G10"});
  EXPECT_EQ(dm.partial_length(p.nodes), 2 + 7 + 1 + 2);
  EXPECT_EQ(dm.complete_length(p.nodes), 2 + 7 + 1 + 2);
}

TEST(WeightedDelay, Validation) {
  const Netlist nl = benchmark_circuit("s27");
  EXPECT_THROW(LineDelayModel(nl, std::vector<int>(3, 1)), std::invalid_argument);
  std::vector<int> neg(nl.node_count(), 1);
  neg[0] = -1;
  EXPECT_THROW(LineDelayModel(nl, neg), std::invalid_argument);
  EXPECT_THROW(random_delay_model(nl, 5, 2, 1), std::invalid_argument);
}

TEST(WeightedDelay, RandomModelDeterministic) {
  const Netlist nl = benchmark_circuit("b03_like");
  const LineDelayModel a = random_delay_model(nl, 1, 9, 42);
  const LineDelayModel b = random_delay_model(nl, 1, 9, 42);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    EXPECT_EQ(a.stem_weight(id), b.stem_weight(id));
    EXPECT_GE(a.stem_weight(id), 0);
    EXPECT_LE(a.stem_weight(id), 9);
  }
  // Inputs weigh 0.
  for (NodeId pi : nl.inputs()) EXPECT_EQ(a.stem_weight(pi), 0);
}

TEST(WeightedDelay, DistancesStayConsistentWithBruteForce) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm = random_delay_model(nl, 1, 5, 7);
  const auto d = distances_to_outputs(dm);

  // Brute force over all complete suffixes.
  std::function<int(NodeId)> rec = [&](NodeId u) -> int {
    int best = kUnreachable;
    const Node& n = nl.node(u);
    if (n.is_output) best = dm.branch_cost(u);
    for (NodeId v : n.fanout) {
      const int sub = rec(v);
      if (sub == kUnreachable) continue;
      best = std::max(best, dm.branch_cost(u) + dm.stem_weight(v) + sub);
    }
    return best;
  };
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    EXPECT_EQ(d[id], rec(id)) << nl.node(id).name;
  }
}

TEST(WeightedDelay, EnumerationKeepsWeightedLongest) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm = random_delay_model(nl, 1, 9, 99);

  EnumerationConfig all_cfg;
  all_cfg.max_faults = 1000000;
  const EnumerationResult all = enumerate_longest_paths(dm, all_cfg);
  ASSERT_FALSE(all.paths.empty());
  for (const auto& p : all.paths) {
    EXPECT_EQ(p.length, dm.complete_length(p.path.nodes));
  }

  EnumerationConfig small_cfg;
  small_cfg.max_faults = 8;
  small_cfg.faults_per_path = 1;
  const EnumerationResult top = enumerate_longest_paths(dm, small_cfg);
  ASSERT_FALSE(top.paths.empty());
  EXPECT_EQ(top.paths.front().length, all.paths.front().length);
  // Every kept path is at least as long as the 8th longest overall.
  const int floor_len = all.paths[std::min<std::size_t>(7, all.paths.size() - 1)].length;
  for (const auto& p : top.paths) EXPECT_GE(p.length, floor_len);
}

TEST(WeightedDelay, TargetSetsUnderWeightedModel) {
  const Netlist nl = benchmark_circuit("s953_like");
  const LineDelayModel dm = random_delay_model(nl, 1, 9, 5);
  TargetSetConfig cfg;
  cfg.n_p = 1000;
  cfg.n_p0 = 100;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    cfg.stem_weights.push_back(dm.stem_weight(id));
  }
  const TargetSets ts = build_target_sets(nl, cfg);
  ASSERT_FALSE(ts.p0.empty());
  for (const auto& tf : ts.p0) EXPECT_GE(tf.fault.length, ts.cutoff_length);
  for (const auto& tf : ts.p1) EXPECT_LT(tf.fault.length, ts.cutoff_length);
  // The weighted profile is much more spread than the unit profile: the
  // number of distinct lengths grows.
  TargetSetConfig unit = cfg;
  unit.stem_weights.clear();
  const TargetSets tu = build_target_sets(nl, unit);
  EXPECT_GT(ts.profile.buckets().size(), tu.profile.buckets().size());
}

}  // namespace
}  // namespace pdf
