#include "faultsim/batch_sim.hpp"

#include <gtest/gtest.h>

#include "enrich/enrichment.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "runtime/metrics.hpp"
#include "sim/backend.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/backend_env.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

std::vector<TwoPatternTest> random_tests(const Netlist& nl, std::size_t count,
                                         Rng& rng) {
  std::vector<TwoPatternTest> tests(count);
  for (auto& t : tests) {
    t.pi_values.resize(nl.inputs().size());
    for (auto& v : t.pi_values) {
      v = pi_triple(rng.coin() ? V3::One : V3::Zero,
                    rng.coin() ? V3::One : V3::Zero);
    }
  }
  return tests;
}

TEST(BatchSim, MatchesScalarSimulatorOnRandomTests) {
  for (const char* name : {"s27", "b03_like", "rca16"}) {
    const Netlist nl = benchmark_circuit(name);
    TargetSetConfig cfg;
    cfg.n_p = 600;
    cfg.n_p0 = 100;
    const TargetSets ts = build_target_sets(nl, cfg);
    if (ts.p0.empty()) continue;

    Rng rng(777);
    // Deliberately not a multiple of 64 to cover the partial last word.
    const auto tests = random_tests(nl, 130, rng);

    FaultSimulator scalar(nl);
    BatchSimulator parallel(nl);
    EXPECT_EQ(parallel.detects_any(tests, ts.p0),
              scalar.detects_any(tests, ts.p0))
        << name;
    EXPECT_EQ(parallel.detects_any(tests, ts.p1),
              scalar.detects_any(tests, ts.p1))
        << name;
  }
}

TEST(BatchSim, DetectionMatrixMatchesPerTestScalar) {
  const Netlist nl = benchmark_circuit("s27");
  TargetSetConfig cfg;
  cfg.n_p = 100;
  cfg.n_p0 = 10;
  const TargetSets ts = build_target_sets(nl, cfg);
  ASSERT_FALSE(ts.p0.empty());

  Rng rng(9);
  const auto tests = random_tests(nl, 70, rng);
  FaultSimulator scalar(nl);
  BatchSimulator parallel(nl);
  const DetectionMatrix matrix = parallel.detection_matrix(tests, ts.p0);
  ASSERT_EQ(matrix.fault_count(), ts.p0.size());
  ASSERT_EQ(matrix.test_count(), tests.size());
  ASSERT_EQ(matrix.words_per_row(), 2u);  // 70 tests -> 2 words
  for (std::size_t f = 0; f < ts.p0.size(); ++f) {
    for (std::size_t t = 0; t < tests.size(); ++t) {
      EXPECT_EQ(matrix.bit(f, t), scalar.detects(tests[t], ts.p0[f]))
          << "fault " << f << " test " << t;
    }
    // Lanes beyond the test count stay clear.
    for (std::size_t lane = 70 - 64; lane < 64; ++lane) {
      EXPECT_EQ((matrix.word(f, 1) >> lane) & 1, 0u);
    }
  }
}

TEST(BatchSim, WordLogicMatchesTripleSimExactly) {
  // Property: pack 64 random tests and compare every line's computed triple
  // against the scalar triple simulator, via the detection of per-line
  // "probe requirements".
  Rng rng(31);
  for (int iter = 0; iter < 10; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    const auto tests = random_tests(nl, 64, rng);
    BatchSimulator parallel(nl);
    FaultSimulator scalar(nl);

    // One synthetic "fault" per node and interesting triple.
    std::vector<TargetFault> probes;
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      for (const Triple& req : {kSteady0, kSteady1, kRise, kFall}) {
        TargetFault tf;
        tf.requirements = {{id, req}};
        probes.push_back(std::move(tf));
      }
    }
    EXPECT_EQ(parallel.detects_any(tests, probes),
              scalar.detects_any(tests, probes))
        << "iter " << iter;
  }
}

TEST(BatchSim, EmptyInputs) {
  const Netlist nl = benchmark_circuit("s27");
  BatchSimulator parallel(nl);
  EXPECT_TRUE(parallel.detects_any({}, {}).empty());
  TargetSetConfig cfg;
  cfg.n_p = 40;
  cfg.n_p0 = 4;
  const TargetSets ts = build_target_sets(nl, cfg);
  const auto none = parallel.detects_any({}, ts.p0);
  for (bool b : none) EXPECT_FALSE(b);
}

TEST(BatchSim, ZeroAllocationAfterWarmupForEveryBackend) {
  // The DESIGN.md §11 memory contract: after one warm-up call sized like the
  // workload, repeated batched queries reuse the scratch arenas — the
  // sim.<backend>.scratch_grows counter must not move. Covers every
  // registered backend, including the shared plane buffer in faultpar and
  // the wide-vector arenas in avx2/avx512.
  const Netlist nl = benchmark_circuit("b03_like");
  TargetSetConfig cfg;
  cfg.n_p = 200;
  cfg.n_p0 = 40;
  const TargetSets ts = build_target_sets(nl, cfg);
  ASSERT_FALSE(ts.p0.empty());
  Rng rng(5);
  // Multiple words at every lane width, with a partial tail.
  const auto tests = random_tests(nl, 700, rng);
  for (sim::SimBackend* backend : sim::all_backends()) {
    const BatchSimulator fsim(nl, backend);
    (void)fsim.detection_matrix(tests, ts.p0);  // warm the arenas
    auto& grows = runtime::Metrics::global().counter(
        std::string("sim.") + backend->name() + ".scratch_grows");
    const std::uint64_t before = grows.read();
    for (int i = 0; i < 3; ++i) {
      (void)fsim.detection_matrix(tests, ts.p0);
    }
    EXPECT_EQ(grows.read(), before)
        << backend->name() << " grew scratch after warm-up";
  }
}

TEST(BatchSim, BadTestWidthThrows) {
  const Netlist nl = benchmark_circuit("s27");
  BatchSimulator parallel(nl);
  TwoPatternTest t;
  t.pi_values.assign(2, kSteady0);
  TargetFault tf;
  tf.requirements = {{0, kSteady0}};
  const TwoPatternTest tests[] = {t};
  const TargetFault faults[] = {tf};
  EXPECT_THROW(parallel.detects_any(tests, faults), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
