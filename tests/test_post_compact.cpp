#include "atpg/post_compact.hpp"

#include <gtest/gtest.h>

#include "enrich/enrichment.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

struct Fixture {
  Netlist nl;
  TargetSets sets;
  GenerationResult gen;
  explicit Fixture(const std::string& name) : nl(benchmark_circuit(name)) {
    TargetSetConfig cfg;
    cfg.n_p = 800;
    cfg.n_p0 = 120;
    sets = build_target_sets(nl, cfg);
    gen = generate_tests(nl, sets.p0, sets.p1, {});
  }
};

TEST(PostCompact, CoveragePreservedExactly) {
  Fixture fx("b03_like");
  const PostCompactionResult pc =
      post_compact(fx.nl, fx.gen.tests, fx.sets.p0, fx.sets.p1);
  EXPECT_LE(pc.tests.size(), fx.gen.tests.size());
  EXPECT_EQ(pc.tests.size() + pc.dropped, fx.gen.tests.size());

  FaultSimulator fsim(fx.nl);
  EXPECT_EQ(fsim.detects_any(pc.tests, fx.sets.p0),
            fsim.detects_any(fx.gen.tests, fx.sets.p0));
  EXPECT_EQ(fsim.detects_any(pc.tests, fx.sets.p1),
            fsim.detects_any(fx.gen.tests, fx.sets.p1));
}

TEST(PostCompact, KeptIndicesAscendingAndConsistent) {
  Fixture fx("b09_like");
  const PostCompactionResult pc =
      post_compact(fx.nl, fx.gen.tests, fx.sets.p0, fx.sets.p1);
  ASSERT_EQ(pc.kept_indices.size(), pc.tests.size());
  for (std::size_t i = 0; i + 1 < pc.kept_indices.size(); ++i) {
    EXPECT_LT(pc.kept_indices[i], pc.kept_indices[i + 1]);
  }
  for (std::size_t i = 0; i < pc.kept_indices.size(); ++i) {
    EXPECT_EQ(pc.tests[i].pi_values,
              fx.gen.tests[pc.kept_indices[i]].pi_values);
  }
}

TEST(PostCompact, EveryKeptTestIsEssentialInReverseOrder) {
  // Invariant of the reverse pass: each kept test detects a fault no
  // later-kept test detects.
  Fixture fx("b03_like");
  const PostCompactionResult pc =
      post_compact(fx.nl, fx.gen.tests, fx.sets.p0, fx.sets.p1);
  FaultSimulator fsim(fx.nl);
  for (std::size_t i = 0; i < pc.tests.size(); ++i) {
    std::vector<TwoPatternTest> later(pc.tests.begin() + i + 1, pc.tests.end());
    const auto with0 = fsim.detects(pc.tests[i], fx.sets.p0);
    const auto with1 = fsim.detects(pc.tests[i], fx.sets.p1);
    const auto later0 = fsim.detects_any(later, fx.sets.p0);
    const auto later1 = fsim.detects_any(later, fx.sets.p1);
    bool essential = false;
    for (std::size_t f = 0; f < with0.size(); ++f) {
      if (with0[f] && !later0[f]) essential = true;
    }
    for (std::size_t f = 0; f < with1.size(); ++f) {
      if (with1[f] && !later1[f]) essential = true;
    }
    EXPECT_TRUE(essential) << "test " << i;
  }
}

TEST(PostCompact, DuplicateTestsAreDropped) {
  Fixture fx("b09_like");
  std::vector<TwoPatternTest> doubled = fx.gen.tests;
  doubled.insert(doubled.end(), fx.gen.tests.begin(), fx.gen.tests.end());
  const PostCompactionResult pc =
      post_compact(fx.nl, doubled, fx.sets.p0, fx.sets.p1);
  EXPECT_LE(pc.tests.size(), fx.gen.tests.size());
  EXPECT_GE(pc.dropped, fx.gen.tests.size());
}

TEST(PostCompact, EmptyInputs) {
  Fixture fx("b09_like");
  const PostCompactionResult none = post_compact(fx.nl, {}, fx.sets.p0);
  EXPECT_TRUE(none.tests.empty());
  const PostCompactionResult no_faults =
      post_compact(fx.nl, fx.gen.tests, {}, {});
  EXPECT_TRUE(no_faults.tests.empty());
  EXPECT_EQ(no_faults.dropped, fx.gen.tests.size());
}

}  // namespace
}  // namespace pdf
