// End-to-end integration tests across the full pipeline, plus parameterized
// sweeps over the benchmark suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "enrich/enrichment.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/combinational.hpp"
#include "netlist/transform.hpp"

namespace pdf {
namespace {

// ---------------------------------------------------------------------------
// Parameterized end-to-end sweep: for every circuit, the pipeline
// (enumerate -> screen -> split -> enrich -> simulate) upholds the paper's
// structural invariants.
class PipelineSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineSweep, InvariantsHold) {
  const Netlist nl = benchmark_circuit(GetParam());
  TargetSetConfig tcfg;
  tcfg.n_p = 500;
  tcfg.n_p0 = 80;
  const EnrichmentWorkbench wb(nl, tcfg);
  const TargetSets& ts = wb.targets();
  if (ts.p0.empty()) GTEST_SKIP() << "no detectable faults survived screening";

  GeneratorConfig gcfg;
  gcfg.seed = 42;
  const GenerationResult r = wb.run_enriched(gcfg);

  // (1) Every generated test is fully specified.
  for (const auto& t : r.tests) EXPECT_TRUE(t.fully_specified());

  // (2) Detection flags are reproducible by plain fault simulation.
  FaultSimulator fsim(nl);
  EXPECT_EQ(fsim.detects_any(r.tests, ts.p0),
            std::vector<bool>(r.detected_p0.begin(), r.detected_p0.end()));
  EXPECT_EQ(fsim.detects_any(r.tests, ts.p1),
            std::vector<bool>(r.detected_p1.begin(), r.detected_p1.end()));

  // (3) Test count is bounded by successful P0 primaries (P1 adds none).
  EXPECT_EQ(r.tests.size(),
            r.stats.primary_attempts - r.stats.primary_failures);
  EXPECT_LE(r.tests.size(), ts.p0.size());

  // (4) Every test detects at least its primary target.
  for (const auto& t : r.tests) {
    const auto det = fsim.detects(t, ts.p0);
    EXPECT_TRUE(std::find(det.begin(), det.end(), true) != det.end());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PipelineSweep,
    ::testing::Values("s27", "s641_like", "s953_like", "s1196_like",
                      "s1423_like", "s1488_like", "b03_like", "b04_like",
                      "b09_like", "rca16", "barrel16x4", "skipchain48"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ---------------------------------------------------------------------------
// Parameterized sweep over target-set budgets: monotonicity of the split.
struct BudgetCase {
  std::size_t n_p;
  std::size_t n_p0;
};

class BudgetSweep : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(BudgetSweep, SplitRespectsBudgets) {
  const BudgetCase c = GetParam();
  const Netlist nl = benchmark_circuit("s1423_like");
  TargetSetConfig cfg;
  cfg.n_p = c.n_p;
  cfg.n_p0 = c.n_p0;
  const TargetSets ts = build_target_sets(nl, cfg);
  EXPECT_GE(ts.p0.size(), std::min(c.n_p0, ts.p_total()));
  EXPECT_LE(ts.p_total(), c.n_p + 64);
  for (const auto& tf : ts.p0) EXPECT_GE(tf.fault.length, ts.cutoff_length);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values(BudgetCase{200, 40},
                                           BudgetCase{400, 80},
                                           BudgetCase{800, 160},
                                           BudgetCase{1600, 320}),
                         [](const ::testing::TestParamInfo<BudgetCase>& info) {
                           return "np" + std::to_string(info.param.n_p);
                         });

// ---------------------------------------------------------------------------
// The complete file-level workflow a downstream user would run: write a
// .bench, parse it, extract, decompose, generate, export tests.
TEST(Integration, BenchFileWorkflow) {
  const std::string path = ::testing::TempDir() + "/workflow.bench";
  {
    std::ofstream out(path);
    out << "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\n"
        << "s = DFF(z)\n"
        << "x = XOR(a, b)\n"
        << "y = AND(x, s)\n"
        << "z = OR(y, c)\n";
  }
  const Netlist seq = parse_bench_file(path);
  const CombinationalCircuit comb = extract_combinational(seq);
  const Netlist nl = decompose_xor(comb.netlist);
  ASSERT_TRUE(is_atpg_ready(nl));

  TargetSetConfig tcfg;
  tcfg.n_p = 100;
  tcfg.n_p0 = 4;
  const EnrichmentWorkbench wb(nl, tcfg);
  const GenerationResult r = wb.run_enriched({});
  EXPECT_FALSE(r.tests.empty());
  EXPECT_GT(r.detected_p0_count(), 0u);
}

// Scaling N_P0 upward can only grow P0 (same P).
TEST(Integration, P0GrowsWithThreshold) {
  const Netlist nl = benchmark_circuit("s953_like");
  std::size_t prev = 0;
  for (std::size_t n_p0 : {40u, 80u, 160u, 320u}) {
    TargetSetConfig cfg;
    cfg.n_p = 1000;
    cfg.n_p0 = n_p0;
    const TargetSets ts = build_target_sets(nl, cfg);
    EXPECT_GE(ts.p0.size(), prev);
    prev = ts.p0.size();
  }
}

}  // namespace
}  // namespace pdf
