#include "faults/transition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "atpg/generator.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

TEST(Transition, TargetsCoverEveryReachableLineInBothDirections) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const TransitionTargets t = build_transition_targets(nl, dm);

  // Every (line, direction) appears either as a target or as untestable.
  std::set<std::pair<NodeId, bool>> seen;
  for (const auto& target : t.targets) {
    seen.insert({target.line, target.rising_at_line});
    ASSERT_LT(target.fault_index, t.faults.size());
  }
  // Lines on complete paths = those with covered entries; check both
  // directions exist for a sample of covered lines.
  std::set<NodeId> lines;
  for (const auto& target : t.targets) lines.insert(target.line);
  EXPECT_GE(lines.size(), nl.node_count() - 2);  // s27: everything reachable
}

TEST(Transition, DirectionBookkeepingMatchesPathParity) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const TransitionTargets t = build_transition_targets(nl, dm);
  for (const auto& target : t.targets) {
    const TargetFault& tf = t.faults[target.fault_index];
    // Recompute the direction the launch produces at the line.
    bool dir = tf.fault.rising_source;
    for (std::size_t k = 1; k < tf.fault.path.nodes.size(); ++k) {
      dir = dir != is_inverting(nl.node(tf.fault.path.nodes[k]).type);
      if (tf.fault.path.nodes[k] == target.line) break;
    }
    if (tf.fault.path.source() == target.line) dir = tf.fault.rising_source;
    EXPECT_EQ(dir, target.rising_at_line)
        << nl.node(target.line).name << " via "
        << fault_to_string(nl, tf.fault);
  }
}

TEST(Transition, GenerationCoversMostTransitions) {
  const Netlist nl = benchmark_circuit("b03_like");
  const LineDelayModel dm(nl);
  const TransitionTargets t = build_transition_targets(nl, dm);
  ASSERT_FALSE(t.faults.empty());

  GeneratorConfig g;
  const GenerationResult r = generate_tests(nl, t.faults, {}, g);
  const std::size_t covered = covered_transitions(t, r.detected_p0);
  EXPECT_GT(covered, 0u);
  EXPECT_LE(covered, t.targets.size());
  // Detected faults translate into covered line transitions consistently.
  FaultSimulator fsim(nl);
  const auto resim = fsim.detects_any(r.tests, t.faults);
  EXPECT_EQ(covered_transitions(t, resim), covered);
}

TEST(Transition, FlagSizeValidation) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  const TransitionTargets t = build_transition_targets(nl, dm);
  std::vector<bool> wrong(t.faults.size() + 1, false);
  EXPECT_THROW(covered_transitions(t, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
