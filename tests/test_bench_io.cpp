#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "gen/registry.hpp"

namespace pdf {
namespace {

TEST(BenchIo, ParsesSimpleCircuit) {
  const Netlist nl = parse_bench_string(R"(
    # comment line
    INPUT(a)
    INPUT(b)
    OUTPUT(z)
    z = AND(a, b)
  )");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.node(nl.id_of("z")).type, GateType::And);
}

TEST(BenchIo, OutOfOrderDefinitions) {
  const Netlist nl = parse_bench_string(R"(
    INPUT(a)
    OUTPUT(z)
    z = NOT(y)     # uses y before its definition
    y = BUF(a)
  )");
  EXPECT_EQ(nl.node(nl.id_of("z")).fanin[0], nl.id_of("y"));
  EXPECT_EQ(nl.depth(), 2);
}

TEST(BenchIo, ParsesDffAndMarksSequential) {
  const Netlist nl = parse_bench_string(s27_bench_text(), "s27seq");
  EXPECT_TRUE(nl.has_sequential());
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.gate_count(), 10u);
}

TEST(BenchIo, CaseInsensitiveGateNames) {
  const Netlist nl = parse_bench_string(R"(
    INPUT(a)
    INPUT(b)
    OUTPUT(z)
    z = nAnD(a, b)
  )");
  EXPECT_EQ(nl.node(nl.id_of("z")).type, GateType::Nand);
}

TEST(BenchIo, WhitespaceAndInlineComments) {
  const Netlist nl = parse_bench_string(
      "INPUT( a )\nINPUT(b)\nOUTPUT( z )\n  z =  OR( a ,  b )  # trailing\n");
  EXPECT_EQ(nl.node(nl.id_of("z")).type, GateType::Or);
}

TEST(BenchIo, RejectsUnknownGate) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nz = FROB(a)\nOUTPUT(z)\n"),
               std::runtime_error);
}

TEST(BenchIo, RejectsUndefinedOperand) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(z)\nz = NOT(ghost)\n"),
               std::runtime_error);
}

TEST(BenchIo, RejectsUndefinedOutput) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n"),
               std::runtime_error);
}

TEST(BenchIo, RejectsCombinationalCycle) {
  EXPECT_THROW(parse_bench_string(R"(
    INPUT(a)
    OUTPUT(p)
    p = AND(a, q)
    q = BUF(p)
  )"),
               std::runtime_error);
}

TEST(BenchIo, RejectsMalformedLine) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nz = AND(a,\n"), std::runtime_error);
  EXPECT_THROW(parse_bench_string("WIBBLE(a)\n"), std::runtime_error);
  EXPECT_THROW(parse_bench_string("INPUT(a, b)\n"), std::runtime_error);
}

TEST(BenchIo, ErrorMessagesCarryLineNumbers) {
  try {
    parse_bench_string("INPUT(a)\n\nz = FROB(a)\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Netlist original = parse_bench_string(s27_bench_text(), "s27");
  const std::string text = to_bench_string(original);
  const Netlist reparsed = parse_bench_string(text, "s27");
  EXPECT_EQ(reparsed.node_count(), original.node_count());
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  for (NodeId id = 0; id < original.node_count(); ++id) {
    const Node& n = original.node(id);
    const NodeId rid = reparsed.id_of(n.name);
    EXPECT_EQ(reparsed.node(rid).type, n.type);
    EXPECT_EQ(reparsed.node(rid).fanin.size(), n.fanin.size());
    for (std::size_t k = 0; k < n.fanin.size(); ++k) {
      EXPECT_EQ(reparsed.node(reparsed.node(rid).fanin[k]).name,
                original.node(n.fanin[k]).name);
    }
  }
}

TEST(BenchIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/pdf_s27.bench";
  {
    const Netlist nl = parse_bench_string(s27_bench_text());
    std::ofstream out(path);
    write_bench(out, nl);
  }
  const Netlist nl = parse_bench_file(path);
  EXPECT_EQ(nl.gate_count(), 10u);
  EXPECT_EQ(nl.name(), "pdf_s27");
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(parse_bench_file("/nonexistent/never.bench"), std::runtime_error);
}

}  // namespace
}  // namespace pdf
