#include "implication/implication.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TEST(Implication, ForwardPropagation) {
  const Netlist nl = testutil::tiny_and_or();
  ImplicationEngine eng(nl);
  const ValueRequirement reqs[] = {
      {nl.id_of("a"), kSteady1},
      {nl.id_of("b"), kSteady1},
  };
  const ImplicationResult r = eng.imply(reqs);
  ASSERT_TRUE(r.consistent);
  EXPECT_EQ(r.values[nl.id_of("y")], kSteady1);
  EXPECT_EQ(r.values[nl.id_of("z")], kSteady1);
}

TEST(Implication, BackwardAndForcesAllInputs) {
  const Netlist nl = testutil::tiny_and_or();
  ImplicationEngine eng(nl);
  const ValueRequirement reqs[] = {{nl.id_of("y"), kSteady1}};
  const ImplicationResult r = eng.imply(reqs);
  ASSERT_TRUE(r.consistent);
  EXPECT_EQ(r.values[nl.id_of("a")], kSteady1);
  EXPECT_EQ(r.values[nl.id_of("b")], kSteady1);
  EXPECT_EQ(r.values[nl.id_of("z")], kSteady1);  // forward through OR
}

TEST(Implication, BackwardLastFreeInput) {
  // y = AND(a, b) required 0 with a already forced 1 -> b must be 0 in that
  // plane.
  const Netlist nl = testutil::tiny_and_or();
  ImplicationEngine eng(nl);
  const ValueRequirement reqs[] = {
      {nl.id_of("y"), final_only(V3::Zero)},
      {nl.id_of("a"), kSteady1},
  };
  const ImplicationResult r = eng.imply(reqs);
  ASSERT_TRUE(r.consistent);
  EXPECT_EQ(r.values[nl.id_of("b")].a3, V3::Zero);
  EXPECT_EQ(r.values[nl.id_of("b")].a1, V3::X);
}

TEST(Implication, PiCouplingMidForcesPatterns) {
  // A steady requirement on a PI forces both pattern planes.
  const Netlist nl = testutil::tiny_and_or();
  ImplicationEngine eng(nl);
  const ValueRequirement reqs[] = {
      {nl.id_of("a"), Triple{V3::X, V3::One, V3::X}}};
  const ImplicationResult r = eng.imply(reqs);
  ASSERT_TRUE(r.consistent);
  EXPECT_EQ(r.values[nl.id_of("a")], kSteady1);
}

TEST(Implication, PiCouplingPatternsForceMid) {
  const Netlist nl = testutil::tiny_and_or();
  ImplicationEngine eng(nl);
  const ValueRequirement reqs[] = {
      {nl.id_of("a"), Triple{V3::One, V3::X, V3::One}}};
  const ImplicationResult r = eng.imply(reqs);
  ASSERT_TRUE(r.consistent);
  EXPECT_EQ(r.values[nl.id_of("a")].a2, V3::One);
}

TEST(Implication, DetectsContradictionThroughReconvergence) {
  // z = NAND(p, q), p = AND(a, b), q = OR(NOT(a), b).
  // Requiring p=11x... steady 1 forces a=1, b=1, which forces q=1 and z=0;
  // also requiring z=1 must contradict.
  const Netlist nl = testutil::reconvergent();
  ImplicationEngine eng(nl);
  const ValueRequirement reqs[] = {
      {nl.id_of("p"), kSteady1},
      {nl.id_of("z"), kSteady1},
  };
  EXPECT_TRUE(eng.contradicts(reqs));
}

TEST(Implication, ConsistentRequirementsStayConsistent) {
  const Netlist nl = testutil::reconvergent();
  ImplicationEngine eng(nl);
  const ValueRequirement reqs[] = {{nl.id_of("p"), kSteady1}};
  EXPECT_FALSE(eng.contradicts(reqs));
}

TEST(Implication, SoundnessOnRandomCircuits) {
  // Property: if implication declares a contradiction for requirements
  // seeding only PI/stem values, then no fully specified binary two-pattern
  // test satisfies them (checked by exhaustive simulation on small
  // circuits). Conversely implied values must agree with every satisfying
  // assignment.
  Rng rng(31415);
  int circuits = 0;
  for (int iter = 0; iter < 60 && circuits < 12; ++iter) {
    const Netlist nl = testutil::random_small_netlist(rng);
    if (nl.inputs().size() > 5) continue;
    ++circuits;
    ImplicationEngine eng(nl);

    for (int trial = 0; trial < 10; ++trial) {
      // Random requirement set over random lines.
      std::vector<ValueRequirement> reqs;
      const std::size_t n_reqs = 1 + rng.below(3);
      for (std::size_t k = 0; k < n_reqs; ++k) {
        const NodeId line = static_cast<NodeId>(rng.below(nl.node_count()));
        static const Triple kChoices[] = {kSteady0, kSteady1, kRise,
                                          kFall,    kFinal0,  kFinal1};
        reqs.push_back({line, kChoices[rng.below(6)]});
      }
      const ImplicationResult imp = eng.imply(reqs);

      bool any_satisfying = false;
      testutil::for_each_binary_test(
          nl.inputs().size(), [&](const std::vector<Triple>& pis) {
            const auto values = simulate(nl, pis);
            for (const auto& r : reqs) {
              if (!values[r.line].covers(r.value)) return;
            }
            any_satisfying = true;
            if (imp.consistent) {
              // Every implied specified component must hold in every
              // satisfying assignment.
              for (NodeId id = 0; id < nl.node_count(); ++id) {
                for (int plane = 0; plane < 3; ++plane) {
                  const V3 implied = imp.values[id][plane];
                  if (is_specified(implied)) {
                    EXPECT_EQ(values[id][plane], implied)
                        << nl.node(id).name << " plane " << plane;
                  }
                }
              }
            }
          });
      if (!imp.consistent) {
        EXPECT_FALSE(any_satisfying)
            << "implication declared contradiction but a test exists";
      }
    }
  }
  EXPECT_GE(circuits, 5);
}

TEST(Implication, RejectsSequentialNetlist) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  const NodeId d = nl.add_gate("d", GateType::Dff, {a});
  nl.mark_output(d);
  nl.finalize();
  EXPECT_THROW(ImplicationEngine eng(nl), std::logic_error);
}

}  // namespace
}  // namespace pdf
