#include "gen/random_circuit.hpp"

#include <gtest/gtest.h>

#include <set>

#include "netlist/bench_io.hpp"
#include "netlist/transform.hpp"
#include "paths/distance.hpp"
#include "paths/enumerate.hpp"

namespace pdf {
namespace {

TEST(RandomCircuit, DeterministicFromSeed) {
  RandomCircuitConfig cfg;
  cfg.seed = 7;
  const Netlist a = generate_random_circuit(cfg);
  const Netlist b = generate_random_circuit(cfg);
  EXPECT_EQ(to_bench_string(a), to_bench_string(b));
}

TEST(RandomCircuit, SeedChangesStructure) {
  RandomCircuitConfig cfg;
  cfg.seed = 7;
  const Netlist a = generate_random_circuit(cfg);
  cfg.seed = 8;
  const Netlist b = generate_random_circuit(cfg);
  EXPECT_NE(to_bench_string(a), to_bench_string(b));
}

TEST(RandomCircuit, MeetsStructuralRequests) {
  RandomCircuitConfig cfg;
  cfg.n_inputs = 30;
  cfg.n_gates = 250;
  cfg.levels = 15;
  cfg.seed = 3;
  const Netlist nl = generate_random_circuit(cfg);
  EXPECT_EQ(nl.inputs().size(), 30u);
  // Gate budget is approximate (chains are sized to it) and unary sub-chains
  // deepen the spine beyond the requested level count.
  EXPECT_GE(nl.gate_count(), 200u);
  EXPECT_LE(nl.gate_count(), 320u);
  EXPECT_GE(nl.depth(), 15);
  EXPECT_LE(nl.depth(), 30);
  EXPECT_TRUE(is_atpg_ready(nl));
  EXPECT_FALSE(nl.has_sequential());
}

TEST(RandomCircuit, EveryInputFeedsLogicAndEveryGateIsObservable) {
  RandomCircuitConfig cfg;
  cfg.seed = 11;
  const Netlist nl = generate_random_circuit(cfg);
  for (NodeId pi : nl.inputs()) {
    EXPECT_FALSE(nl.node(pi).fanout.empty()) << nl.node(pi).name;
  }
  // No dangling non-output gates.
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) continue;
    EXPECT_TRUE(!n.fanout.empty() || n.is_output) << n.name;
  }
  // Every node reaches an output.
  const LineDelayModel dm(nl);
  const auto d = distances_to_outputs(dm);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == GateType::Input && nl.node(id).fanout.empty()) {
      continue;
    }
    EXPECT_NE(d[id], kUnreachable) << nl.node(id).name;
  }
}

TEST(RandomCircuit, HasManyPathsWithSpreadLengths) {
  RandomCircuitConfig cfg;
  cfg.seed = 5;
  cfg.n_gates = 300;
  cfg.levels = 18;
  const Netlist nl = generate_random_circuit(cfg);
  const LineDelayModel dm(nl);
  EnumerationConfig ecfg;
  ecfg.max_faults = 4000;
  const EnumerationResult r = enumerate_longest_paths(dm, ecfg);
  EXPECT_GE(r.paths.size() * 2, 1000u);  // >= 1000 faults, like the paper's cut
  // Path lengths spread over multiple values (needed for a P0/P1 split).
  std::set<int> lengths;
  for (const auto& p : r.paths) lengths.insert(p.length);
  EXPECT_GE(lengths.size(), 4u);
}

TEST(RandomCircuit, RejectsDegenerateConfig) {
  RandomCircuitConfig cfg;
  cfg.n_inputs = 1;
  EXPECT_THROW(generate_random_circuit(cfg), std::invalid_argument);
  cfg.n_inputs = 8;
  cfg.levels = 1;
  EXPECT_THROW(generate_random_circuit(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
