// Typed-error surface: malformed .bench/netlist input and invalid configs
// must throw pdf::ParseError / pdf::ConfigError (catchable, attributable to
// a source line) — never abort, never exit, never leak a bare logic_error
// out of the parsing layer. These are the negative paths the pdf_serve
// daemon turns into "parse_error"/"config_error" responses.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "atpg/test_io.hpp"
#include "base/error.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "paths/enumerate.hpp"
#include "paths/path.hpp"
#include "serve/protocol.hpp"

namespace pdf {
namespace {

/// Runs `fn`, expecting a ParseError; returns it for inspection.
template <typename Fn>
ParseError capture_parse_error(Fn&& fn) {
  try {
    fn();
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ParseError";
  return ParseError("", 0, "no error thrown");
}

TEST(TypedErrorsTest, HierarchyKeepsLegacyCatchSitesWorking) {
  // ParseError is-a runtime_error and ConfigError is-a invalid_argument, so
  // every pre-existing catch/EXPECT_THROW on the standard types still fires.
  static_assert(std::is_base_of_v<std::runtime_error, ParseError>);
  static_assert(std::is_base_of_v<std::invalid_argument, ConfigError>);
  EXPECT_THROW(parse_bench_string("garbage", "t"), std::runtime_error);
  EXPECT_THROW(
      enumerate_longest_paths(LineDelayModel(benchmark_circuit("s27")),
                              EnumerationConfig{.max_faults = 0}),
      std::invalid_argument);
}

TEST(TypedErrorsTest, BenchGarbageLineIsAttributed) {
  const auto e = capture_parse_error(
      [] { parse_bench_string("INPUT(a)\nwhat is this\n", "mychip"); });
  EXPECT_EQ(e.source(), "mychip");
  EXPECT_EQ(e.line(), 2);
  EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
}

TEST(TypedErrorsTest, BenchUnknownGateType) {
  const auto e = capture_parse_error([] {
    parse_bench_string("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n", "t");
  });
  EXPECT_EQ(e.line(), 3);
  EXPECT_NE(std::string(e.what()).find("unknown gate type"),
            std::string::npos);
}

TEST(TypedErrorsTest, BenchUndefinedOperand) {
  const auto e = capture_parse_error([] {
    parse_bench_string("INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n", "t");
  });
  EXPECT_EQ(e.line(), 3);
  EXPECT_NE(std::string(e.what()).find("undefined operand ghost"),
            std::string::npos);
}

TEST(TypedErrorsTest, BenchDuplicateDefinition) {
  const auto e = capture_parse_error([] {
    parse_bench_string(
        "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\nz = OR(a, b)\n", "t");
  });
  EXPECT_EQ(e.line(), 5);
}

TEST(TypedErrorsTest, BenchOutputOfUndefinedSignal) {
  const auto e = capture_parse_error([] {
    parse_bench_string("INPUT(a)\nOUTPUT(nope)\nz = NOT(a)\n", "t");
  });
  EXPECT_EQ(e.line(), 2);  // the OUTPUT line, not end-of-file
  EXPECT_NE(std::string(e.what()).find("OUTPUT(nope)"), std::string::npos);
}

TEST(TypedErrorsTest, BenchStructuralErrorsSurfaceAsLineZero) {
  // A combinational cycle is a whole-netlist property; finalize() reports it
  // and the parser wraps it as a ParseError at line 0.
  const auto e = capture_parse_error([] {
    parse_bench_string(
        "INPUT(a)\nOUTPUT(z)\nu = AND(a, v)\nv = AND(a, u)\nz = NOT(u)\n",
        "t");
  });
  EXPECT_EQ(e.line(), 0);
}

TEST(TypedErrorsTest, BenchUnopenableFile) {
  const auto e = capture_parse_error(
      [] { parse_bench_file("/nonexistent/dir/missing.bench"); });
  EXPECT_EQ(e.line(), 0);
  EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
}

TEST(TypedErrorsTest, TestFileErrorsAreAttributed) {
  const Netlist nl = benchmark_circuit("s27");
  std::istringstream bad("circuit s27\ninputs wrong names here\n");
  const auto e =
      capture_parse_error([&] { read_tests(bad, nl); });
  EXPECT_EQ(e.source(), "tests");
  EXPECT_EQ(e.line(), 2);
}

TEST(TypedErrorsTest, EnumerationConfigValidation) {
  const Netlist nl = benchmark_circuit("s27");
  const LineDelayModel dm(nl);
  EXPECT_THROW(
      enumerate_longest_paths(dm, EnumerationConfig{.max_faults = 0}),
      ConfigError);
  EnumerationConfig bad_fpp;
  bad_fpp.faults_per_path = 0;
  EXPECT_THROW(enumerate_longest_paths(dm, bad_fpp), ConfigError);
}

TEST(TypedErrorsTest, DelayModelWeightValidation) {
  const Netlist nl = benchmark_circuit("s27");
  EXPECT_THROW(LineDelayModel(nl, std::vector<int>(3, 1)), ConfigError);
  std::vector<int> negative(nl.node_count(), 1);
  negative[0] = -2;
  EXPECT_THROW(LineDelayModel(nl, std::move(negative)), ConfigError);
}

TEST(TypedErrorsTest, ServeClassifierMapsTheTaxonomy) {
  const auto classify = [](auto&& thrower) {
    try {
      thrower();
    } catch (...) {
      return serve::classify_error(std::current_exception());
    }
    return serve::ErrorInfo{};
  };

  const auto parse = classify(
      [] { parse_bench_string("INPUT(a)\nbogus\n", "t"); });
  EXPECT_EQ(parse.kind, "parse_error");
  EXPECT_EQ(parse.line, 2);

  const auto config =
      classify([] { throw ConfigError("np0 must be <= np"); });
  EXPECT_EQ(config.kind, "config_error");

  const auto legacy =
      classify([] { throw std::invalid_argument("old-style rejection"); });
  EXPECT_EQ(legacy.kind, "config_error");

  const auto internal = classify([] { throw std::logic_error("bug"); });
  EXPECT_EQ(internal.kind, "internal");
}

}  // namespace
}  // namespace pdf
