#include "base/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pdf {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit with overwhelming probability
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, CoinIsRoughlyFair) {
  Rng r(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.coin() ? 1 : 0;
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(5);
  Rng fork1 = a.fork();
  Rng b(5);
  Rng fork2 = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fork1.next(), fork2.next());
}

}  // namespace
}  // namespace pdf
