#include "report/stats.hpp"

#include <gtest/gtest.h>

namespace pdf {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownPopulation) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of this classic set is sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeAndLargeValues) {
  RunningStats s;
  s.add(-1e9);
  s.add(1e9);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -1e9);
  EXPECT_DOUBLE_EQ(s.max(), 1e9);
  EXPECT_GT(s.stddev(), 1e8);
}

}  // namespace
}  // namespace pdf
