#include "enrich/target_sets.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"

namespace pdf {
namespace {

TEST(TargetSets, P0ContainsAllLongestAndMeetsThreshold) {
  const Netlist nl = benchmark_circuit("s1423_like");
  TargetSetConfig cfg;
  cfg.n_p = 4000;
  cfg.n_p0 = 400;
  const TargetSets ts = build_target_sets(nl, cfg);

  ASSERT_FALSE(ts.p0.empty());
  EXPECT_GE(ts.p0.size(), cfg.n_p0);
  EXPECT_EQ(ts.p_total(), ts.screen.kept);
  EXPECT_LE(ts.p_total(), cfg.n_p + 64);  // budget (ties can overshoot a bit)

  // Every P0 fault is at least as long as every P1 fault, and the split is
  // exactly at the cutoff length.
  int min_p0 = 1 << 30;
  for (const auto& tf : ts.p0) {
    EXPECT_GE(tf.fault.length, ts.cutoff_length);
    min_p0 = std::min(min_p0, tf.fault.length);
  }
  EXPECT_EQ(min_p0, ts.cutoff_length);
  for (const auto& tf : ts.p1) {
    EXPECT_LT(tf.fault.length, ts.cutoff_length);
  }
}

TEST(TargetSets, I0IsMinimal) {
  // Using one fewer length bucket must leave P0 below the threshold — the
  // paper picks the smallest i0 whose cumulative count reaches N_P0.
  const Netlist nl = benchmark_circuit("s953_like");
  TargetSetConfig cfg;
  cfg.n_p = 3000;
  cfg.n_p0 = 300;
  const TargetSets ts = build_target_sets(nl, cfg);
  const auto& buckets = ts.profile.buckets();
  ASSERT_LT(ts.i0, buckets.size());
  EXPECT_GE(buckets[ts.i0].cumulative, cfg.n_p0);
  if (ts.i0 > 0) {
    EXPECT_LT(buckets[ts.i0 - 1].cumulative, cfg.n_p0);
  }
  EXPECT_EQ(buckets[ts.i0].length, ts.cutoff_length);
}

TEST(TargetSets, ProfileMatchesFaults) {
  const Netlist nl = benchmark_circuit("b03_like");
  TargetSetConfig cfg;
  cfg.n_p = 2000;
  cfg.n_p0 = 200;
  const TargetSets ts = build_target_sets(nl, cfg);
  std::size_t total = 0;
  for (const auto& b : ts.profile.buckets()) total += b.count;
  EXPECT_EQ(total, ts.p_total());
  EXPECT_EQ(ts.profile.total(), ts.p_total());
}

TEST(TargetSets, RequirementsPrecomputedForAllFaults) {
  const Netlist nl = benchmark_circuit("b09_like");
  TargetSetConfig cfg;
  cfg.n_p = 1500;
  cfg.n_p0 = 150;
  const TargetSets ts = build_target_sets(nl, cfg);
  for (const auto& tf : ts.p0) {
    EXPECT_FALSE(tf.requirements.empty());
  }
  for (const auto& tf : ts.p1) {
    EXPECT_FALSE(tf.requirements.empty());
  }
}

TEST(TargetSets, ScreenAccounting) {
  const Netlist nl = benchmark_circuit("s27");
  TargetSetConfig cfg;
  cfg.n_p = 100;
  cfg.n_p0 = 10;
  const TargetSets ts = build_target_sets(nl, cfg);
  EXPECT_EQ(ts.screen.input_faults, ts.enumerated_paths * 2);
  EXPECT_EQ(ts.screen.kept + ts.screen.conflict_dropped +
                ts.screen.implication_dropped,
            ts.screen.input_faults);
}

TEST(TargetSets, SmallBudgetStillKeepsLongest) {
  const Netlist nl = benchmark_circuit("s1196_like");
  TargetSetConfig small, large;
  small.n_p = 300;
  small.n_p0 = 50;
  large.n_p = 3000;
  large.n_p0 = 50;
  const TargetSets a = build_target_sets(nl, small);
  const TargetSets b = build_target_sets(nl, large);
  ASSERT_FALSE(a.p0.empty());
  ASSERT_FALSE(b.p0.empty());
  // The maximum screened length may differ only if screening dropped the
  // longest faults in one run; the enumerated longest path length itself is
  // budget-independent, so compare profile heads.
  EXPECT_EQ(a.profile.buckets().front().length,
            b.profile.buckets().front().length);
}

}  // namespace
}  // namespace pdf
