#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/registry.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

std::vector<Waveform> sample_waveforms(const Netlist& nl) {
  std::vector<Triple> pis(nl.inputs().size(), kSteady0);
  pis[0] = kRise;
  std::vector<int> sw(nl.inputs().size(), 5);
  std::vector<int> delays(nl.node_count(), 2);
  return simulate_timed(nl, pis, sw, delays);
}

TEST(Vcd, StructureAndContent) {
  const Netlist nl = testutil::tiny_and_or();
  const auto wf = sample_waveforms(nl);
  const std::string vcd = vcd_to_string(nl, wf, "unit test");

  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$comment unit test $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module tiny $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  // One $var per node.
  std::size_t vars = 0, pos = 0;
  while ((pos = vcd.find("$var wire 1 ", pos)) != std::string::npos) {
    ++vars;
    ++pos;
  }
  EXPECT_EQ(vars, nl.node_count());
  // The rising input a produces a timestamped change at t=5.
  EXPECT_NE(vcd.find("#5"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(Vcd, ChangesAreTimeOrdered) {
  const Netlist nl = benchmark_circuit("s27");
  std::vector<Triple> pis(nl.inputs().size(), kSteady1);
  pis[1] = kFall;
  std::vector<int> sw(nl.inputs().size(), 3);
  std::vector<int> delays(nl.node_count(), 1);
  const auto wf = simulate_timed(nl, pis, sw, delays);
  const std::string vcd = vcd_to_string(nl, wf);

  int prev = -1;
  std::istringstream in(vcd);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '#') {
      const int t = std::stoi(line.substr(1));
      EXPECT_GT(t, prev);
      prev = t;
    }
  }
  EXPECT_GE(prev, 0);
}

TEST(Vcd, WrongSizeThrows) {
  const Netlist nl = testutil::tiny_and_or();
  std::vector<Waveform> too_few(2);
  std::ostringstream os;
  EXPECT_THROW(write_vcd(os, nl, too_few), std::invalid_argument);
}

}  // namespace
}  // namespace pdf
