// Shared fixtures for the test suite: tiny hand-built circuits and brute
// force reference utilities.
#pragma once

#include <functional>
#include <vector>

#include "base/rng.hpp"
#include "base/triple.hpp"
#include "netlist/netlist.hpp"

namespace pdf::testing {

/// y = AND(a, b), z = OR(y, c); outputs y, z.
inline Netlist tiny_and_or() {
  Netlist nl("tiny");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId c = nl.add_input("c");
  const NodeId y = nl.add_gate("y", GateType::And, {a, b});
  const NodeId z = nl.add_gate("z", GateType::Or, {y, c});
  nl.mark_output(y);
  nl.mark_output(z);
  nl.finalize();
  return nl;
}

/// A 2-level circuit with reconvergent fanout:
///   n = NOT(a); p = AND(a, b); q = OR(n, b); z = NAND(p, q).
inline Netlist reconvergent() {
  Netlist nl("reconv");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId n = nl.add_gate("n", GateType::Not, {a});
  const NodeId p = nl.add_gate("p", GateType::And, {a, b});
  const NodeId q = nl.add_gate("q", GateType::Or, {n, b});
  const NodeId z = nl.add_gate("z", GateType::Nand, {p, q});
  nl.mark_output(z);
  nl.finalize();
  return nl;
}

/// Random small primitive-only combinational netlist for property tests.
/// Between 2 and 6 inputs, up to ~24 gates, every sink marked output.
inline Netlist random_small_netlist(Rng& rng) {
  Netlist nl("prop");
  const std::size_t n_in = 2 + rng.below(5);
  std::vector<NodeId> pool;
  for (std::size_t i = 0; i < n_in; ++i) {
    pool.push_back(nl.add_input("i" + std::to_string(i)));
  }
  const std::size_t n_gates = 4 + rng.below(21);
  for (std::size_t g = 0; g < n_gates; ++g) {
    static constexpr GateType kTypes[] = {GateType::And,  GateType::Nand,
                                          GateType::Or,   GateType::Nor,
                                          GateType::Not,  GateType::Buf};
    const GateType t = kTypes[rng.below(6)];
    std::vector<NodeId> fanin;
    fanin.push_back(pool[rng.below(pool.size())]);
    if (t != GateType::Not && t != GateType::Buf) {
      const std::size_t extra = 1 + rng.below(2);
      for (std::size_t e = 0; e < extra; ++e) {
        const NodeId f = pool[rng.below(pool.size())];
        bool dup = false;
        for (NodeId x : fanin) dup = dup || x == f;
        if (!dup) fanin.push_back(f);
      }
      if (fanin.size() < 2) continue;  // skip degenerate gate
    }
    pool.push_back(nl.add_gate("g" + std::to_string(g), t, std::move(fanin)));
  }
  nl.finalize();
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).fanout.empty() && nl.node(id).type != GateType::Input) {
      nl.mark_output(id);
    }
  }
  nl.finalize();
  return nl;
}

/// Enumerates all fully specified PI triple assignments of small circuits by
/// calling `fn` with each assignment (both pattern planes binary; the
/// intermediate plane derived). 9^n assignments would be excessive, so this
/// walks the 4^n binary pattern pairs.
inline void for_each_binary_test(std::size_t n_inputs,
                                 const std::function<void(const std::vector<Triple>&)>& fn) {
  std::vector<Triple> pis(n_inputs);
  const std::size_t total = std::size_t{1} << (2 * n_inputs);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      const V3 v1 = (c & 1) ? V3::One : V3::Zero;
      const V3 v3 = (c & 2) ? V3::One : V3::Zero;
      c >>= 2;
      const V3 mid = v1 == v3 ? v1 : V3::X;
      pis[i] = Triple{v1, mid, v3};
    }
    fn(pis);
  }
}

}  // namespace pdf::testing
