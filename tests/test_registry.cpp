#include "gen/registry.hpp"

#include <gtest/gtest.h>

#include "netlist/transform.hpp"
#include "paths/enumerate.hpp"
#include "paths/path.hpp"

namespace pdf {
namespace {

TEST(Registry, CatalogIsConsistent) {
  const auto catalog = benchmark_catalog();
  EXPECT_GE(catalog.size(), 14u);
  for (const auto& info : catalog) {
    EXPECT_TRUE(has_benchmark(info.name)) << info.name;
    EXPECT_FALSE(info.description.empty()) << info.name;
  }
  EXPECT_FALSE(has_benchmark("definitely_not_a_circuit"));
  EXPECT_THROW(benchmark_circuit("definitely_not_a_circuit"),
               std::invalid_argument);
}

TEST(Registry, AllCircuitsAreAtpgReady) {
  for (const auto& info : benchmark_catalog()) {
    const Netlist nl = benchmark_circuit(info.name);
    EXPECT_TRUE(nl.finalized()) << info.name;
    EXPECT_FALSE(nl.has_sequential()) << info.name;
    EXPECT_TRUE(is_atpg_ready(nl)) << info.name;
    EXPECT_FALSE(nl.inputs().empty()) << info.name;
    EXPECT_FALSE(nl.outputs().empty()) << info.name;
  }
}

TEST(Registry, TableCircuitsFollowPaperOrder) {
  const auto circuits = table_circuits();
  ASSERT_EQ(circuits.size(), 8u);
  EXPECT_EQ(circuits[0], "s641_like");
  EXPECT_EQ(circuits[7], "b09_like");
  for (const auto& name : circuits) EXPECT_TRUE(has_benchmark(name));
  const auto extra = table6_extra_circuits();
  ASSERT_EQ(extra.size(), 3u);
  for (const auto& name : extra) EXPECT_TRUE(has_benchmark(name));
}

TEST(Registry, TableCircuitsHaveAtLeast1000Paths) {
  // The paper "only consider[s] circuits with at least 1000 paths".
  for (const auto& name : table_circuits()) {
    const Netlist nl = benchmark_circuit(name);
    const LineDelayModel dm(nl);
    EnumerationConfig cfg;
    cfg.max_faults = 1200;  // stop early; we only need the threshold
    const EnumerationResult r = enumerate_longest_paths(dm, cfg);
    EXPECT_GE(r.paths.size() * 2 + r.trace.prunes.size(), 1000u / 2)
        << name;  // kept near budget implies plenty of paths
  }
}

TEST(Registry, BuildersAreDeterministic) {
  for (const auto& name : {"s641_like", "b03_like", "rca16"}) {
    const Netlist a = benchmark_circuit(name);
    const Netlist b = benchmark_circuit(name);
    EXPECT_EQ(a.node_count(), b.node_count()) << name;
    EXPECT_EQ(a.depth(), b.depth()) << name;
  }
}

TEST(Registry, S27TextAvailable) {
  EXPECT_NE(s27_bench_text().find("G17 = NOT(G11)"), std::string::npos);
  EXPECT_NE(s27_bench_text().find("G5 = DFF(G10)"), std::string::npos);
}

}  // namespace
}  // namespace pdf
