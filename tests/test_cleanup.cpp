#include "netlist/cleanup.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/transform.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

// Exhaustive functional equivalence over named outputs.
void expect_equivalent(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  const std::size_t n = a.inputs().size();
  ASSERT_LE(n, 10u);
  for (std::size_t code = 0; code < (std::size_t{1} << n); ++code) {
    std::vector<V3> va(n);
    for (std::size_t i = 0; i < n; ++i) {
      va[i] = (code >> i) & 1 ? V3::One : V3::Zero;
    }
    const auto ra = simulate_plane(a, va);
    const auto rb = simulate_plane(b, va);
    for (NodeId oa : a.outputs()) {
      const auto id = b.find(a.node(oa).name);
      if (!id) continue;  // renamed through buffer removal: checked below
      EXPECT_EQ(ra[oa], rb[*id]) << a.node(oa).name;
    }
  }
}

TEST(Cleanup, SweepBuffersRemovesChains) {
  const Netlist nl = parse_bench_string(R"(
    INPUT(a)
    INPUT(b)
    OUTPUT(z)
    b1 = BUF(a)
    b2 = BUF(b1)
    z = AND(b2, b)
  )");
  CleanupReport rep;
  const Netlist swept = sweep_buffers(nl, &rep);
  EXPECT_EQ(rep.buffers_removed, 2u);
  EXPECT_EQ(swept.gate_count(), 1u);
  expect_equivalent(nl, swept);
  // The AND now reads the input directly.
  const Node& z = swept.node(swept.id_of("z"));
  EXPECT_EQ(swept.node(z.fanin[0]).name, "a");
}

TEST(Cleanup, OutputBufferTransfersMarking) {
  const Netlist nl = parse_bench_string(R"(
    INPUT(a)
    OUTPUT(z)
    y = NOT(a)
    z = BUF(y)
  )");
  CleanupReport rep;
  const Netlist swept = sweep_buffers(nl, &rep);
  EXPECT_EQ(rep.buffers_removed, 1u);
  EXPECT_TRUE(swept.node(swept.id_of("y")).is_output);
  EXPECT_FALSE(swept.find("z").has_value());
}

TEST(Cleanup, BufferBetweenTwoOutputsIsKept) {
  // y is an output and z = BUF(y) is another output: removing the buffer
  // would collapse two distinct outputs, so it must stay.
  const Netlist nl = parse_bench_string(R"(
    INPUT(a)
    OUTPUT(y)
    OUTPUT(z)
    y = NOT(a)
    z = BUF(y)
  )");
  CleanupReport rep;
  const Netlist swept = sweep_buffers(nl, &rep);
  EXPECT_EQ(rep.buffers_removed, 0u);
  EXPECT_EQ(swept.outputs().size(), 2u);
}

TEST(Cleanup, SweepDanglingRemovesDeadCones) {
  const Netlist nl = parse_bench_string(R"(
    INPUT(a)
    INPUT(b)
    OUTPUT(z)
    z = AND(a, b)
    dead1 = NOT(a)
    dead2 = OR(dead1, b)
  )");
  CleanupReport rep;
  const Netlist swept = sweep_dangling(nl, &rep);
  EXPECT_EQ(rep.dangling_removed, 2u);
  EXPECT_FALSE(swept.find("dead1").has_value());
  EXPECT_FALSE(swept.find("dead2").has_value());
  EXPECT_TRUE(swept.find("z").has_value());
}

TEST(Cleanup, CombinedPassOnDecomposedXor) {
  // XOR decomposition leaves a BUF per XOR output; cleanup removes them and
  // preserves the function.
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nx = XOR(a, b)\nz = AND(x, c)\n");
  const Netlist flat = decompose_xor(nl);
  CleanupReport rep;
  const Netlist clean = cleanup(flat, &rep);
  EXPECT_GE(rep.buffers_removed, 1u);
  EXPECT_LT(clean.node_count(), flat.node_count());
  expect_equivalent(nl, clean);
}

TEST(Cleanup, IdempotentOnCleanNetlist) {
  const Netlist nl = testutil::reconvergent();
  CleanupReport rep;
  const Netlist once = cleanup(nl, &rep);
  EXPECT_EQ(rep.buffers_removed, 0u);
  EXPECT_EQ(rep.dangling_removed, 0u);
  EXPECT_EQ(once.node_count(), nl.node_count());
}

}  // namespace
}  // namespace pdf
