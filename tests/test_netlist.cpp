#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

TEST(Netlist, BuildAndLookup) {
  Netlist nl = testutil::tiny_and_or();
  EXPECT_EQ(nl.node_count(), 5u);
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_TRUE(nl.find("y").has_value());
  EXPECT_FALSE(nl.find("nope").has_value());
  EXPECT_EQ(nl.node(nl.id_of("y")).type, GateType::And);
  EXPECT_THROW(nl.id_of("nope"), std::runtime_error);
}

TEST(Netlist, DuplicateNameRejected) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), std::runtime_error);
  EXPECT_THROW(nl.add_gate("a", GateType::Not, {0}), std::runtime_error);
}

TEST(Netlist, ArityChecked) {
  Netlist nl;
  const NodeId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate("g", GateType::And, {a}), std::runtime_error);
  EXPECT_THROW(nl.add_gate("h", GateType::Not, {a, a}), std::runtime_error);
  EXPECT_NO_THROW(nl.add_gate("k", GateType::Not, {a}));
}

TEST(Netlist, UnknownFaninRejected) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_gate("g", GateType::Not, {42}), std::runtime_error);
}

TEST(Netlist, LevelsAndTopoOrder) {
  Netlist nl = testutil::tiny_and_or();
  EXPECT_EQ(nl.depth(), 2);
  EXPECT_EQ(nl.node(nl.id_of("a")).level, 0);
  EXPECT_EQ(nl.node(nl.id_of("y")).level, 1);
  EXPECT_EQ(nl.node(nl.id_of("z")).level, 2);
  // Topological order: every fanin precedes its consumer.
  std::vector<int> pos(nl.node_count(), -1);
  const auto topo = nl.topo_order();
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = static_cast<int>(i);
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    for (NodeId f : nl.node(id).fanin) EXPECT_LT(pos[f], pos[id]);
  }
}

TEST(Netlist, FanoutComputed) {
  Netlist nl = testutil::tiny_and_or();
  const auto& y = nl.node(nl.id_of("y"));
  ASSERT_EQ(y.fanout.size(), 1u);
  EXPECT_EQ(y.fanout[0], nl.id_of("z"));
  EXPECT_EQ(nl.node(nl.id_of("a")).fanout.size(), 1u);
}

TEST(Netlist, FaninIndex) {
  Netlist nl = testutil::tiny_and_or();
  EXPECT_EQ(nl.fanin_index(nl.id_of("y"), nl.id_of("a")), 0u);
  EXPECT_EQ(nl.fanin_index(nl.id_of("y"), nl.id_of("b")), 1u);
  EXPECT_THROW(nl.fanin_index(nl.id_of("y"), nl.id_of("c")), std::runtime_error);
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist nl = testutil::tiny_and_or();
  const std::size_t before = nl.outputs().size();
  nl.mark_output("y");
  EXPECT_EQ(nl.outputs().size(), before);
}

TEST(Netlist, RedefineGateUnfinalizes) {
  Netlist nl = testutil::tiny_and_or();
  ASSERT_TRUE(nl.finalized());
  nl.redefine_gate(nl.id_of("z"), GateType::Nor,
                   {nl.id_of("y"), nl.id_of("c")});
  EXPECT_FALSE(nl.finalized());
  nl.finalize();
  EXPECT_EQ(nl.node(nl.id_of("z")).type, GateType::Nor);
}

TEST(Netlist, RedefineInputRejected) {
  Netlist nl = testutil::tiny_and_or();
  EXPECT_THROW(nl.redefine_gate(nl.id_of("a"), GateType::Not, {nl.id_of("b")}),
               std::runtime_error);
}

TEST(Netlist, FreshNamesDoNotCollide) {
  Netlist nl = testutil::tiny_and_or();
  const std::string n1 = nl.fresh_name("y");
  const std::string n2 = nl.fresh_name("y");
  EXPECT_NE(n1, "y");
  EXPECT_NE(n1, n2);
  EXPECT_FALSE(nl.find(n1).has_value());
}

TEST(Netlist, TopoOrderRequiresFinalize) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.topo_order(), std::logic_error);
}

TEST(Netlist, StatsCountLinesWithBranches) {
  // s27 combinational core: 17 stems + 9 branch lines = 26 lines, matching
  // the paper's numbering that runs up to line 26.
  const Netlist s27 = benchmark_circuit("s27");
  const NetlistStats st = stats_of(s27);
  EXPECT_EQ(st.inputs, 7u);   // 4 PIs + 3 state inputs
  EXPECT_EQ(st.gates, 10u);
  EXPECT_EQ(st.lines, 26u);
  EXPECT_EQ(st.outputs, 4u);  // G17 + three DFF data taps
}

TEST(Netlist, GateTypeHelpers) {
  EXPECT_EQ(*controlling_value(GateType::And), V3::Zero);
  EXPECT_EQ(*controlling_value(GateType::Nor), V3::One);
  EXPECT_FALSE(controlling_value(GateType::Not).has_value());
  EXPECT_TRUE(is_inverting(GateType::Nand));
  EXPECT_FALSE(is_inverting(GateType::Or));
  EXPECT_TRUE(is_primitive_logic(GateType::Buf));
  EXPECT_FALSE(is_primitive_logic(GateType::Xor));
  EXPECT_FALSE(is_primitive_logic(GateType::Dff));
}

TEST(Netlist, EvalGateBasics) {
  const V3 f00[] = {V3::Zero, V3::Zero};
  const V3 f11[] = {V3::One, V3::One};
  const V3 f1x[] = {V3::One, V3::X};
  EXPECT_EQ(eval_gate(GateType::Nand, f00), V3::One);
  EXPECT_EQ(eval_gate(GateType::Nand, f11), V3::Zero);
  EXPECT_EQ(eval_gate(GateType::Nor, f00), V3::One);
  EXPECT_EQ(eval_gate(GateType::And, f1x), V3::X);
  const V3 one[] = {V3::One};
  EXPECT_EQ(eval_gate(GateType::Not, one), V3::Zero);
  EXPECT_EQ(eval_gate(GateType::Buf, one), V3::One);
}

TEST(Netlist, GateTypeStringRoundTrip) {
  for (GateType t : {GateType::Buf, GateType::Not, GateType::And, GateType::Nand,
                     GateType::Or, GateType::Nor, GateType::Xor, GateType::Xnor,
                     GateType::Dff}) {
    EXPECT_EQ(gate_type_from_string(to_string(t)), t);
  }
  EXPECT_EQ(gate_type_from_string("BUFF"), GateType::Buf);
  EXPECT_EQ(gate_type_from_string("NAND"), GateType::Nand);
  EXPECT_FALSE(gate_type_from_string("mystery").has_value());
}

}  // namespace
}  // namespace pdf
