// serve subsystem tests: protocol round-trips, run_job determinism and
// warm-cache byte-identity, Server admission control / backpressure,
// cancellation, graceful drain, the pdf.admin/1 telemetry plane (stats /
// health / jobs / prom answered live without perturbing result bytes,
// slow-job trace capture), and per-request run-manifest emission under
// concurrent sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "obs/json.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"

namespace pdf {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "pdf-serve-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

serve::Request small_job(std::int64_t id, std::uint64_t seed = 1,
                         std::size_t np = 60) {
  serve::Request req;
  req.id = id;
  req.kind = serve::RequestKind::Enrich;
  req.circuit = "s27";
  req.target.n_p = np;
  req.target.n_p0 = np / 5;
  req.gen.seed = seed;
  return req;
}

/// Collects asynchronous responses and lets tests wait for N of them.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<serve::Response> responses;

  std::function<void(serve::Response)> sink() {
    return [this](serve::Response r) {
      std::lock_guard<std::mutex> lk(mu);
      responses.push_back(std::move(r));
      cv.notify_all();
    };
  }
  std::vector<serve::Response> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return responses.size() >= n; });
    return responses;
  }
};

// ---- protocol ---------------------------------------------------------------

TEST(ServeProtocolTest, RequestRoundTripsThroughJson) {
  serve::Request req = small_job(7, 42);
  req.kind = serve::RequestKind::Basic;
  req.gen.heuristic = CompactionHeuristic::Length;
  req.want_manifest = true;
  req.want_tests = true;

  const serve::Request back =
      serve::parse_request(serve::request_json(req).dump());
  EXPECT_EQ(back.id, 7);
  EXPECT_EQ(back.kind, serve::RequestKind::Basic);
  EXPECT_EQ(back.circuit, "s27");
  EXPECT_EQ(back.target.n_p, req.target.n_p);
  EXPECT_EQ(back.target.n_p0, req.target.n_p0);
  EXPECT_EQ(back.gen.seed, 42u);
  EXPECT_EQ(back.gen.heuristic, CompactionHeuristic::Length);
  EXPECT_TRUE(back.want_manifest);
  EXPECT_TRUE(back.want_tests);
}

TEST(ServeProtocolTest, ResponseRoundTripsThroughWireFormat) {
  serve::Response resp;
  resp.id = 9;
  resp.status = serve::Status::Rejected;
  resp.error = {"overload", "queue full", -1};
  resp.retry_after_ms = 25;
  resp.cache_hits = 3;
  resp.cache_misses = 1;
  resp.queue_ns = 123;
  resp.run_ns = 456;

  const serve::Response back = serve::parse_response(resp.to_line());
  EXPECT_EQ(back.id, 9);
  EXPECT_EQ(back.status, serve::Status::Rejected);
  EXPECT_EQ(back.error.kind, "overload");
  EXPECT_EQ(back.retry_after_ms, 25u);
  EXPECT_EQ(back.cache_hits, 3u);
  EXPECT_EQ(back.cache_misses, 1u);
  EXPECT_EQ(back.queue_ns, 123u);
  EXPECT_EQ(back.run_ns, 456u);
}

TEST(ServeProtocolTest, SalvageRecoversIdsFromBrokenLines) {
  using serve::salvage_request_id;
  // Valid JSON that merely fails request validation.
  EXPECT_EQ(salvage_request_id(R"({"id":42,"kind":"frobnicate"})"), 42);
  // Syntactically broken JSON still yields the id lexically.
  EXPECT_EQ(salvage_request_id(R"({"id":10,"kind":"enrich","bench":"garb)"), 10);
  EXPECT_EQ(salvage_request_id(R"({"kind":"x", "id" : -7, "np":)"), -7);
  // Nothing recoverable -> 0.
  EXPECT_EQ(salvage_request_id("not json at all"), 0);
  EXPECT_EQ(salvage_request_id(R"({"id":"not-a-number"})"), 0);
  EXPECT_EQ(salvage_request_id(R"({"id": })"), 0);
}

TEST(ServeProtocolTest, ParseRequestValidates) {
  using serve::parse_request;
  EXPECT_THROW(parse_request("not json"), obs::JsonError);
  EXPECT_THROW(parse_request("[1,2]"), obs::JsonError);
  // Job without a netlist, or with both forms at once.
  EXPECT_THROW(parse_request(R"({"id":1,"kind":"enrich"})"), ConfigError);
  EXPECT_THROW(
      parse_request(
          R"x({"id":1,"kind":"enrich","circuit":"s27","bench":"INPUT(a)"})x"),
      ConfigError);
  EXPECT_THROW(
      parse_request(R"({"id":1,"kind":"enrich","circuit":"s27","np":0})"),
      ConfigError);
  // np0 > np is the classic inverted-budget config error.
  EXPECT_THROW(
      parse_request(
          R"({"id":1,"kind":"enrich","circuit":"s27","np":10,"np0":20})"),
      ConfigError);
  EXPECT_THROW(
      parse_request(R"({"id":1,"kind":"enrich","circuit":"s27","np":-5})"),
      ConfigError);
  EXPECT_THROW(parse_request(R"({"id":1,"kind":"frobnicate"})"), ConfigError);
  EXPECT_THROW(
      parse_request(
          R"({"id":1,"kind":"enrich","circuit":"s27","heuristic":"magic"})"),
      ConfigError);
  EXPECT_THROW(parse_request(R"({"id":1,"kind":"cancel"})"), ConfigError);
  EXPECT_EQ(serve::salvage_request_id(R"({"id":33,"kind":"frobnicate"})"), 33);
  EXPECT_EQ(serve::salvage_request_id("not json"), 0);
}

// ---- request queue ----------------------------------------------------------

TEST(RequestQueueTest, AdmissionControlAndDrain) {
  serve::RequestQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), serve::Admission::Accepted);
  EXPECT_EQ(q.try_push(2), serve::Admission::Accepted);
  EXPECT_EQ(q.try_push(3), serve::Admission::Rejected);
  EXPECT_EQ(q.depth(), 2u);

  // remove_if pulls a queued item (cancellation path).
  const auto removed = q.remove_if([](int v) { return v == 1; });
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 1);

  q.close();
  EXPECT_EQ(q.try_push(4), serve::Admission::Closed);
  // Closed but non-empty: pop keeps draining...
  const auto a = q.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 2);
  // ...and only then reports exhaustion.
  EXPECT_FALSE(q.pop().has_value());
}

// ---- run_job ----------------------------------------------------------------

TEST(ServeJobTest, WarmCacheResultIsByteIdenticalToCold) {
  TempDir dir;
  store::StageCache cache(dir.path);
  serve::JobContext cached{&cache, "bitpar", dir.path.string(), ""};
  const serve::JobContext uncached{nullptr, "bitpar", "", ""};

  const serve::Request req = small_job(1);
  const serve::Response plain = serve::run_job(req, uncached);
  const serve::Response cold = serve::run_job(req, cached);
  const serve::Response warm = serve::run_job(req, cached);

  ASSERT_EQ(plain.status, serve::Status::Ok);
  ASSERT_EQ(cold.status, serve::Status::Ok);
  ASSERT_EQ(warm.status, serve::Status::Ok);
  // The determinism contract: result bytes identical across no-cache, cold
  // and warm runs; telemetry (latency, cache deltas) lives outside `result`.
  EXPECT_EQ(plain.result.dump(), cold.result.dump());
  EXPECT_EQ(cold.result.dump(), warm.result.dump());
  EXPECT_GT(cold.cache_misses, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
}

TEST(ServeJobTest, InlineBenchAndFailureTaxonomy) {
  const serve::JobContext ctx{nullptr, "bitpar", "", ""};

  serve::Request inline_req;
  inline_req.id = 5;
  inline_req.bench_text =
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n";
  inline_req.target.n_p = 10;
  inline_req.target.n_p0 = 2;
  const serve::Response ok = serve::run_job(inline_req, ctx);
  ASSERT_EQ(ok.status, serve::Status::Ok);
  EXPECT_EQ(ok.result.at("circuit").as_string().rfind("inline:", 0), 0u);
  EXPECT_GT(ok.result.at("test_count").as_int(), 0);

  serve::Request bad_bench = inline_req;
  bad_bench.bench_text = "INPUT(a)\nz = FROB(a)\n";
  const serve::Response parse_err = serve::run_job(bad_bench, ctx);
  EXPECT_EQ(parse_err.status, serve::Status::Error);
  EXPECT_EQ(parse_err.error.kind, "parse_error");
  EXPECT_EQ(parse_err.error.line, 2);

  serve::Request unknown = small_job(6);
  unknown.circuit = "no_such_circuit";
  const serve::Response cfg_err = serve::run_job(unknown, ctx);
  EXPECT_EQ(cfg_err.status, serve::Status::Error);
  EXPECT_EQ(cfg_err.error.kind, "config_error");
}

TEST(ServeJobTest, WantTestsAttachesPatterns) {
  const serve::JobContext ctx{nullptr, "bitpar", "", ""};
  serve::Request req = small_job(2);
  req.want_tests = true;
  const serve::Response resp = serve::run_job(req, ctx);
  ASSERT_EQ(resp.status, serve::Status::Ok);
  const auto& tests = resp.result.at("tests").as_array();
  EXPECT_EQ(static_cast<std::int64_t>(tests.size()),
            resp.result.at("test_count").as_int());
  for (const auto& t : tests) {
    EXPECT_NE(t.as_string().find('/'), std::string::npos);
  }
}

// ---- server -----------------------------------------------------------------

TEST(ServeServerTest, ConcurrentJobsMatchDirectExecution) {
  TempDir dir;
  serve::ServerConfig cfg;
  cfg.concurrency = 4;
  cfg.queue_depth = 32;
  cfg.store_dir = dir.path.string();
  serve::Server server(cfg);

  Collector collector;
  constexpr int kJobs = 12;
  for (int i = 0; i < kJobs; ++i) {
    // Three distinct seeds: repeats exercise the shared warm tier while the
    // first run of each seed is cold — all concurrently.
    server.submit(small_job(i + 1, 1 + static_cast<std::uint64_t>(i % 3)),
                  collector.sink());
  }
  const auto responses = collector.wait_for(kJobs);

  const serve::JobContext uncached{nullptr, "bitpar", "", ""};
  std::set<std::int64_t> ids;
  for (const auto& resp : responses) {
    ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error.message;
    ids.insert(resp.id);
    const serve::Request ref =
        small_job(resp.id, 1 + static_cast<std::uint64_t>((resp.id - 1) % 3));
    EXPECT_EQ(resp.result.dump(),
              serve::run_job(ref, uncached).result.dump());
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kJobs));

  const serve::Response pong =
      server.call([] { serve::Request r; r.kind = serve::RequestKind::Ping;
                       r.id = 99; return r; }());
  EXPECT_EQ(pong.status, serve::Status::Ok);
  EXPECT_TRUE(pong.result.at("pong").as_bool());
  const serve::Response stats =
      server.call([] { serve::Request r; r.kind = serve::RequestKind::Stats;
                       return r; }());
  EXPECT_GE(stats.result.at("jobs").at("completed").as_int(), kJobs);
}

TEST(ServeServerTest, QueueOverflowRejectsWithRetryHint) {
  serve::ServerConfig cfg;
  cfg.concurrency = 1;
  cfg.queue_depth = 1;
  cfg.retry_after_ms = 17;
  serve::Server server(cfg);

  Collector collector;
  // Burst of jobs into a single slow worker with a one-deep queue: at most
  // one runs and one queues; the rest must be rejected immediately (the
  // admission path never blocks), not stall the submitter.
  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) {
    server.submit(small_job(i + 1, 100 + static_cast<std::uint64_t>(i), 400),
                  collector.sink());
  }
  const auto responses = collector.wait_for(kBurst);

  int ok = 0, rejected = 0;
  for (const auto& resp : responses) {
    if (resp.status == serve::Status::Ok) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, serve::Status::Rejected);
      EXPECT_EQ(resp.error.kind, "overload");
      EXPECT_EQ(resp.retry_after_ms, 17u);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(ok + rejected, kBurst);
}

TEST(ServeServerTest, CancelQueuedJob) {
  serve::ServerConfig cfg;
  cfg.concurrency = 1;
  cfg.queue_depth = 8;
  serve::Server server(cfg);

  Collector collector;
  // Occupy the single worker, then park a job in the queue and cancel it.
  server.submit(small_job(1, 7, 800), collector.sink());
  server.submit(small_job(42, 8, 800), collector.sink());

  serve::Request cancel;
  cancel.kind = serve::RequestKind::Cancel;
  cancel.id = 2;
  cancel.cancel_target = 42;
  const serve::Response ack = server.call(std::move(cancel));
  ASSERT_EQ(ack.status, serve::Status::Ok);

  const auto responses = collector.wait_for(2);
  const auto& job42 = responses[0].id == 42 ? responses[0] : responses[1];
  if (ack.result.at("cancelled").as_bool()) {
    EXPECT_EQ(job42.status, serve::Status::Cancelled);
    EXPECT_EQ(job42.error.kind, "cancelled");
  } else {
    // The worker won the race and ran it; it must then have completed.
    EXPECT_EQ(job42.status, serve::Status::Ok);
  }
  // Cancelling an unknown id is a no-op, not an error.
  serve::Request missing;
  missing.kind = serve::RequestKind::Cancel;
  missing.cancel_target = 4711;
  const serve::Response nack = server.call(std::move(missing));
  ASSERT_EQ(nack.status, serve::Status::Ok);
  EXPECT_FALSE(nack.result.at("cancelled").as_bool());
}

TEST(ServeServerTest, DrainCompletesAdmittedJobsThenRejects) {
  serve::ServerConfig cfg;
  cfg.concurrency = 2;
  cfg.queue_depth = 16;
  serve::Server server(cfg);

  Collector collector;
  constexpr int kJobs = 6;
  for (int i = 0; i < kJobs; ++i) {
    server.submit(small_job(i + 1, 200 + static_cast<std::uint64_t>(i)),
                  collector.sink());
  }
  server.drain();  // blocks until every admitted job has responded

  const auto responses = collector.wait_for(kJobs);
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kJobs));
  for (const auto& resp : responses) {
    EXPECT_EQ(resp.status, serve::Status::Ok) << resp.error.message;
  }

  // Post-drain submissions are turned away as shutting_down.
  Collector late;
  server.submit(small_job(100), late.sink());
  const auto rejected = late.wait_for(1);
  EXPECT_EQ(rejected[0].status, serve::Status::Rejected);
  EXPECT_EQ(rejected[0].error.kind, "shutting_down");
  EXPECT_TRUE(server.draining());
}

// ---- pdf.admin/1 telemetry plane -------------------------------------------

serve::Request admin_request(serve::RequestKind kind, std::int64_t id) {
  serve::Request r;
  r.kind = kind;
  r.id = id;
  return r;
}

// The determinism contract: admin queries answered concurrently with job
// execution must leave every job's `result` byte-identical to a direct,
// uncached, unobserved run.
TEST(ServeServerTest, AdminQueriesDoNotPerturbResultBytes) {
  TempDir dir;
  serve::ServerConfig cfg;
  cfg.concurrency = 4;
  cfg.queue_depth = 32;
  cfg.store_dir = dir.path.string();
  serve::Server server(cfg);

  Collector collector;
  constexpr int kJobs = 10;
  std::atomic<bool> stop{false};
  // Hammer the admin surface from a separate thread while jobs run.
  std::thread admin([&] {
    std::int64_t id = 1000;
    while (!stop.load(std::memory_order_acquire)) {
      for (const serve::RequestKind kind :
           {serve::RequestKind::Stats, serve::RequestKind::Health,
            serve::RequestKind::Jobs, serve::RequestKind::Prom}) {
        const serve::Response r = server.call(admin_request(kind, ++id));
        EXPECT_EQ(r.status, serve::Status::Ok);
        EXPECT_EQ(r.result.at("schema").as_string(), "pdf.admin/1");
      }
    }
  });
  for (int i = 0; i < kJobs; ++i) {
    server.submit(small_job(i + 1, 1 + static_cast<std::uint64_t>(i % 3)),
                  collector.sink());
  }
  const auto responses = collector.wait_for(kJobs);
  stop.store(true, std::memory_order_release);
  admin.join();

  const serve::JobContext uncached{nullptr, "bitpar", "", ""};
  for (const auto& resp : responses) {
    ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error.message;
    const serve::Request ref =
        small_job(resp.id, 1 + static_cast<std::uint64_t>((resp.id - 1) % 3));
    EXPECT_EQ(resp.result.dump(), serve::run_job(ref, uncached).result.dump());
  }
}

TEST(ServeServerTest, HealthAndJobsReportLiveState) {
  serve::ServerConfig cfg;
  cfg.concurrency = 1;
  cfg.queue_depth = 8;
  serve::Server server(cfg);

  Collector collector;
  // One job occupies the single worker, one parks in the queue, so the
  // jobs listing observably contains live entries.
  server.submit(small_job(1, 7, 800), collector.sink());
  server.submit(small_job(2, 8, 800), collector.sink());

  const serve::Response health =
      server.call(admin_request(serve::RequestKind::Health, 100));
  ASSERT_EQ(health.status, serve::Status::Ok);
  EXPECT_EQ(health.result.at("schema").as_string(), "pdf.admin/1");
  EXPECT_GE(health.result.at("uptime_ms").as_int(), 0);
  EXPECT_FALSE(health.result.at("draining").as_bool());
  EXPECT_EQ(health.result.at("queue").at("capacity").as_int(), 8);
  EXPECT_GE(health.result.at("inflight").as_int(), 0);
  EXPECT_FALSE(health.result.at("cache").at("enabled").as_bool());

  const serve::Response jobs =
      server.call(admin_request(serve::RequestKind::Jobs, 101));
  ASSERT_EQ(jobs.status, serve::Status::Ok);
  const auto& list = jobs.result.at("jobs").as_array();
  EXPECT_GE(list.size(), 1u);  // at least the queued job is still live
  for (const auto& j : list) {
    EXPECT_GT(j.at("id").as_int(), 0);
    EXPECT_EQ(j.at("kind").as_string(), "enrich");
    EXPECT_EQ(j.at("circuit").as_string(), "s27");
    const std::string phase = j.at("phase").as_string();
    EXPECT_TRUE(phase == "queued" || phase == "running" || phase == "done")
        << phase;
    EXPECT_GE(j.at("age_ms").as_int(), 0);
    EXPECT_FALSE(j.at("cancelled").as_bool());
  }

  const serve::Response prom =
      server.call(admin_request(serve::RequestKind::Prom, 102));
  ASSERT_EQ(prom.status, serve::Status::Ok);
  EXPECT_EQ(prom.result.at("content_type").as_string(),
            "text/plain; version=0.0.4");
  const std::string text = prom.result.at("text").as_string();
  EXPECT_NE(text.find("# TYPE pdf_serve_jobs_inflight gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pdf_serve_uptime_seconds gauge"),
            std::string::npos);

  collector.wait_for(2);
  server.drain();
  const serve::Response drained =
      server.call(admin_request(serve::RequestKind::Health, 103));
  EXPECT_TRUE(drained.result.at("draining").as_bool());
}

TEST(ServeServerTest, SlowJobThresholdCapturesChromeTrace) {
  TempDir manifest_dir;
  serve::ServerConfig cfg;
  cfg.concurrency = 1;
  cfg.queue_depth = 4;
  cfg.manifest_dir = manifest_dir.path.string();
  cfg.slow_job_ms = 1;  // a 800-pattern s27 job takes well over 1 ms
  serve::Server server(cfg);

  Collector collector;
  server.submit(small_job(1, 9, 800), collector.sink());
  const auto responses = collector.wait_for(1);
  ASSERT_EQ(responses[0].status, serve::Status::Ok)
      << responses[0].error.message;
  server.drain();

  std::vector<fs::path> traces;
  for (const auto& entry : fs::directory_iterator(manifest_dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 11 &&
        name.compare(name.size() - 11, 11, ".trace.json") == 0) {
      traces.push_back(entry.path());
    }
  }
  ASSERT_EQ(traces.size(), 1u);
  std::ifstream in(traces[0]);
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json doc = obs::Json::parse(buf.str());
  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_GT(doc.at("traceEvents").as_array().size(), 0u);

  const serve::Response stats =
      server.call(admin_request(serve::RequestKind::Stats, 50));
  EXPECT_GE(stats.result.at("metrics")
                .at("counters")
                .at("serve.jobs.slow")
                .as_int(),
            1);
}

// ---- per-request manifests under concurrency (satellite: run manifests) ----

TEST(ServeServerTest, ConcurrentSessionsEmitOneManifestPerRequest) {
  TempDir store_dir;
  TempDir manifest_dir;
  serve::ServerConfig cfg;
  cfg.concurrency = 4;
  cfg.queue_depth = 32;
  cfg.store_dir = store_dir.path.string();
  cfg.manifest_dir = manifest_dir.path.string();
  cfg.backend = "bitpar";
  serve::Server server(cfg);

  Collector collector;
  constexpr int kJobs = 8;
  for (int i = 0; i < kJobs; ++i) {
    serve::Request req = small_job(i + 1, 300 + static_cast<std::uint64_t>(i));
    req.want_manifest = true;
    server.submit(std::move(req), collector.sink());
  }
  const auto responses = collector.wait_for(kJobs);

  for (const auto& resp : responses) {
    ASSERT_EQ(resp.status, serve::Status::Ok) << resp.error.message;
    // The inline manifest is present and carries the per-request backend.
    ASSERT_FALSE(resp.manifest.is_null());
    EXPECT_EQ(resp.manifest.at("schema").as_string(), "pdf.run_manifest/1");
    EXPECT_EQ(resp.manifest.at("params").at("backend").as_string(), "bitpar");
  }

  // Exactly one manifest file per request, each a complete JSON document —
  // concurrent sessions must not interleave or drop writes.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(manifest_dir.path)) {
    files.push_back(entry.path());
  }
  ASSERT_EQ(files.size(), static_cast<std::size_t>(kJobs));
  std::set<std::string> names;
  for (const auto& f : files) {
    names.insert(f.filename().string());
    std::ifstream in(f);
    std::stringstream buf;
    buf << in.rdbuf();
    const obs::Json doc = obs::Json::parse(buf.str());  // throws if torn
    EXPECT_EQ(doc.at("schema").as_string(), "pdf.run_manifest/1");
    EXPECT_EQ(doc.at("params").at("backend").as_string(), "bitpar");
    EXPECT_EQ(doc.at("bench").as_string(), "pdf_serve");
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kJobs));
}

}  // namespace
}  // namespace pdf
