#include "report/coverage.hpp"

#include <gtest/gtest.h>

#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"

namespace pdf {
namespace {

struct Fixture {
  Netlist nl = benchmark_circuit("b03_like");
  TargetSets sets;
  GenerationResult gen;
  Fixture() {
    TargetSetConfig cfg;
    cfg.n_p = 800;
    cfg.n_p0 = 120;
    sets = build_target_sets(nl, cfg);
    gen = generate_tests(nl, sets.p0, sets.p1, {});
  }
};

TEST(Coverage, TotalsMatchDetectionFlags) {
  Fixture fx;
  const CoverageBreakdown b = coverage_by_length(fx.sets.p0, fx.gen.detected_p0);
  EXPECT_EQ(b.total, fx.sets.p0.size());
  EXPECT_EQ(b.detected, fx.gen.detected_p0_count());
  std::size_t total = 0, det = 0;
  for (const auto& bucket : b.buckets) {
    total += bucket.total;
    det += bucket.detected;
    EXPECT_LE(bucket.detected, bucket.total);
    EXPECT_GE(bucket.ratio(), 0.0);
    EXPECT_LE(bucket.ratio(), 1.0);
  }
  EXPECT_EQ(total, b.total);
  EXPECT_EQ(det, b.detected);
}

TEST(Coverage, BucketsDescendByLength) {
  Fixture fx;
  const CoverageBreakdown b = coverage_by_length(fx.sets.p1, fx.gen.detected_p1);
  for (std::size_t i = 0; i + 1 < b.buckets.size(); ++i) {
    EXPECT_GT(b.buckets[i].length, b.buckets[i + 1].length);
  }
}

TEST(Coverage, SimulationOverloadAgrees) {
  Fixture fx;
  const CoverageBreakdown from_flags =
      coverage_by_length(fx.sets.p0, fx.gen.detected_p0);
  const CoverageBreakdown from_sim =
      coverage_by_length(fx.nl, fx.gen.tests, fx.sets.p0);
  ASSERT_EQ(from_flags.buckets.size(), from_sim.buckets.size());
  for (std::size_t i = 0; i < from_flags.buckets.size(); ++i) {
    EXPECT_EQ(from_flags.buckets[i].detected, from_sim.buckets[i].detected);
    EXPECT_EQ(from_flags.buckets[i].total, from_sim.buckets[i].total);
  }
}

TEST(Coverage, SummaryRendering) {
  Fixture fx;
  const CoverageBreakdown b = coverage_by_length(fx.sets.p0, fx.gen.detected_p0);
  const std::string s = coverage_summary(b, 3);
  EXPECT_NE(s.find("L="), std::string::npos);
  if (b.buckets.size() > 3) {
    EXPECT_NE(s.find("..."), std::string::npos);
  }
}

TEST(Coverage, SizeMismatchThrows) {
  Fixture fx;
  std::vector<bool> wrong(fx.sets.p0.size() + 1, false);
  EXPECT_THROW(coverage_by_length(fx.sets.p0, wrong), std::invalid_argument);
}

TEST(Coverage, EmptyFaultList) {
  const CoverageBreakdown b =
      coverage_by_length(std::span<const TargetFault>{}, std::vector<bool>{});
  EXPECT_EQ(b.total, 0u);
  EXPECT_EQ(b.ratio(), 0.0);
  EXPECT_TRUE(b.buckets.empty());
}

}  // namespace
}  // namespace pdf
