#include "netlist/transform.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "sim/triple_sim.hpp"
#include "testutil/circuits.hpp"

namespace pdf {
namespace {

// Exhaustively compares the boolean functions of two primitive netlists with
// identically named inputs/outputs.
void expect_equivalent(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  const std::size_t n = a.inputs().size();
  ASSERT_LE(n, 12u);
  for (std::size_t code = 0; code < (std::size_t{1} << n); ++code) {
    std::vector<V3> va(n), vb(n);
    for (std::size_t i = 0; i < n; ++i) {
      va[i] = (code >> i) & 1 ? V3::One : V3::Zero;
    }
    // Align by input name.
    for (std::size_t i = 0; i < n; ++i) {
      const std::string& name = a.node(a.inputs()[i]).name;
      bool found = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (b.node(b.inputs()[j]).name == name) {
          vb[j] = va[i];
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << name;
    }
    const std::vector<V3> ra = simulate_plane(a, va);
    const std::vector<V3> rb = simulate_plane(b, vb);
    for (NodeId oa : a.outputs()) {
      const std::string& name = a.node(oa).name;
      if (!b.find(name)) continue;  // helper-renamed output
      EXPECT_EQ(ra[oa], rb[b.id_of(name)])
          << "output " << name << " differs at minterm " << code;
    }
  }
}

TEST(Transform, Xor2Decomposition) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = XOR(a, b)\n");
  const Netlist flat = decompose_xor(nl);
  EXPECT_TRUE(is_atpg_ready(flat));
  EXPECT_FALSE(is_atpg_ready(nl));
  expect_equivalent(nl, flat);
}

TEST(Transform, Xnor3Decomposition) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nz = XNOR(a, b, c)\n");
  const Netlist flat = decompose_xor(nl);
  EXPECT_TRUE(is_atpg_ready(flat));
  expect_equivalent(nl, flat);
}

TEST(Transform, MixedCircuitKeepsNames) {
  const Netlist nl = parse_bench_string(R"(
    INPUT(a)
    INPUT(b)
    INPUT(c)
    OUTPUT(z)
    OUTPUT(w)
    x = XOR(a, b)
    z = AND(x, c)
    w = NOR(x, a)
  )");
  const Netlist flat = decompose_xor(nl);
  EXPECT_TRUE(is_atpg_ready(flat));
  // Non-XOR gates keep their names; the XOR output name survives as a BUF.
  EXPECT_TRUE(flat.find("z").has_value());
  EXPECT_TRUE(flat.find("w").has_value());
  EXPECT_TRUE(flat.find("x").has_value());
  EXPECT_EQ(flat.node(flat.id_of("x")).type, GateType::Buf);
  expect_equivalent(nl, flat);
}

TEST(Transform, NoXorIsStructurallyIdentical) {
  const Netlist nl = testutil::reconvergent();
  const Netlist flat = decompose_xor(nl);
  EXPECT_EQ(flat.node_count(), nl.node_count());
  EXPECT_TRUE(is_atpg_ready(flat));
}

TEST(Transform, WideXorChain) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z)\n"
      "z = XOR(a, b, c, d, e)\n");
  const Netlist flat = decompose_xor(nl);
  EXPECT_TRUE(is_atpg_ready(flat));
  expect_equivalent(nl, flat);
}

TEST(Transform, IsAtpgReadyDetectsDff) {
  const Netlist nl = parse_bench_string(
      "INPUT(a)\nOUTPUT(z)\ns = DFF(z)\nz = AND(a, s)\n");
  EXPECT_FALSE(is_atpg_ready(nl));
}

}  // namespace
}  // namespace pdf
