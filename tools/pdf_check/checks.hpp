// The differential / metamorphic check catalog of pdf_check.
//
// Every check is a pure function of (netlist, case seed): it derives any
// random tests or configs it needs from the seed, runs a production engine
// and the oracle (or the same engine twice under different execution
// conditions), and returns a failure message or nullopt. Purity is what
// makes shrinking possible — the shrinker replays the same (check, seed)
// against ever-smaller netlists and keeps the failure reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "netlist/netlist.hpp"

namespace pdf::check {

using CheckFn = std::optional<std::string> (*)(const Netlist&, std::uint64_t seed);

struct Check {
  const char* name;
  /// Run this check on every `stride`-th generated case (1 = every case);
  /// keeps the expensive whole-pipeline checks from dominating the budget.
  std::size_t stride;
  CheckFn fn;
};

/// The full catalog. `base_threads` is the pool size the driver runs with;
/// the thread-determinism check restores it after resizing the global pool.
std::span<const Check> all_checks();
void set_base_threads(std::size_t threads);

/// Looks a check up by name (for --replay and --check); null when unknown.
const Check* find_check(const std::string& name);

/// SplitMix64 — derives independent sub-seeds from a case seed.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt);

}  // namespace pdf::check
