#include "pdf_check/shrink.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "netlist/bench_io.hpp"

namespace pdf::check {
namespace {

/// Rebuilds the netlist with `victim` (a gate) removed: every consumer is
/// rewired to the victim's first fanin, and an output mark on the victim
/// moves there too. Returns nullopt when the edit is impossible or produces
/// an invalid netlist.
std::optional<Netlist> without_gate(const Netlist& nl, NodeId victim) {
  const Node& v = nl.node(victim);
  if (v.type == GateType::Input || v.fanin.empty()) return std::nullopt;
  const NodeId bypass = v.fanin[0];
  if (bypass == victim) return std::nullopt;

  try {
    Netlist out(nl.name());
    std::vector<NodeId> map(nl.node_count(), kNoNode);
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      if (id == victim) continue;
      map[id] = nl.node(id).type == GateType::Input
                    ? out.add_input(nl.node(id).name)
                    : out.add_gate_placeholder(nl.node(id).name, nl.node(id).type);
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      if (id == victim || nl.node(id).type == GateType::Input) continue;
      std::vector<NodeId> fanin;
      for (NodeId f : nl.node(id).fanin) {
        fanin.push_back(map[f == victim ? bypass : f]);
      }
      out.set_fanin(map[id], std::move(fanin));
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      if (id != victim && nl.node(id).is_output) out.mark_output(map[id]);
    }
    if (v.is_output) out.mark_output(map[bypass]);
    out.finalize();
    for (NodeId id = 0; id < out.node_count(); ++id) {
      if (out.node(id).fanout.empty() && out.node(id).type != GateType::Input &&
          !out.node(id).is_output) {
        out.mark_output(id);
      }
    }
    out.finalize();
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Drops an unconsumed, unobserved primary input (keeping at least one).
std::optional<Netlist> without_input(const Netlist& nl, NodeId victim) {
  const Node& v = nl.node(victim);
  if (v.type != GateType::Input || !v.fanout.empty() || v.is_output) {
    return std::nullopt;
  }
  if (nl.inputs().size() < 2) return std::nullopt;

  try {
    Netlist out(nl.name());
    std::vector<NodeId> map(nl.node_count(), kNoNode);
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      if (id == victim) continue;
      map[id] = nl.node(id).type == GateType::Input
                    ? out.add_input(nl.node(id).name)
                    : out.add_gate_placeholder(nl.node(id).name, nl.node(id).type);
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      if (id == victim || nl.node(id).type == GateType::Input) continue;
      std::vector<NodeId> fanin;
      for (NodeId f : nl.node(id).fanin) fanin.push_back(map[f]);
      out.set_fanin(map[id], std::move(fanin));
    }
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      if (id != victim && nl.node(id).is_output) out.mark_output(map[id]);
    }
    out.finalize();
    return out;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

void shrink(Failure& f) {
  const auto failure_of = [&](const Netlist& cand) -> std::optional<std::string> {
    // A candidate that makes the check throw is a different problem, not a
    // smaller instance of this one: treat it as passing.
    try {
      return f.check->fn(cand, f.seed);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  };

  bool improved = true;
  while (improved) {
    improved = false;
    for (NodeId id = static_cast<NodeId>(f.netlist.node_count()); id-- > 0;) {
      std::optional<Netlist> cand = without_gate(f.netlist, id);
      if (!cand) cand = without_input(f.netlist, id);
      if (!cand) continue;
      if (std::optional<std::string> msg = failure_of(*cand)) {
        f.netlist = std::move(*cand);
        f.message = std::move(*msg);
        improved = true;
        break;
      }
    }
  }
}

void write_repro(const Failure& f, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write repro file " + path);
  char seed_hex[32];
  std::snprintf(seed_hex, sizeof seed_hex, "0x%016llx",
                static_cast<unsigned long long>(f.seed));
  out << "# pdf_check repro\n";
  out << "# check: " << f.check->name << "\n";
  out << "# seed: " << seed_hex << "\n";
  out << "# " << f.message << "\n";
  out << to_bench_string(f.netlist);
}

Replay read_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read repro file " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  Replay r;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string check_tag = "# check: ";
    const std::string seed_tag = "# seed: ";
    if (line.rfind(check_tag, 0) == 0) {
      r.check_name = line.substr(check_tag.size());
    } else if (line.rfind(seed_tag, 0) == 0) {
      r.seed = std::strtoull(line.substr(seed_tag.size()).c_str(), nullptr, 0);
    }
  }
  if (r.check_name.empty()) {
    throw std::runtime_error("repro file has no '# check:' header: " + path);
  }
  r.netlist = parse_bench_string(text, "repro");
  return r;
}

}  // namespace pdf::check
