// pdf_check — generative differential fuzzer for every engine in the library.
//
// Each case seeds a random small circuit (optionally perturbed by structural
// mutators), then runs the production engines against the brute-force oracle
// in src/oracle/ and against themselves across execution conditions (thread
// counts, artifact-store cold/warm). On the first failure the case is shrunk
// to a near-minimal netlist and written to a repro file that --replay reruns.
//
//   pdf_check [--cases N] [--seed S | --seed from-git-sha] [--threads N]
//             [--backend NAME] [--check NAME] [--repro FILE] [--replay FILE]
//             [--list-checks] [--list-backends] [--verbose]
//
// `--list-backends` prints one registered backend name per line and exits —
// the capability probe CI uses to decide which PDF_BACKEND/--backend matrix
// legs this host can run (wide SIMD backends only register on capable CPUs;
// see src/sim/cpu_features.hpp).
//
// Exit status: 0 clean, 1 check failure (repro written), 2 usage/setup error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "netlist/netlist.hpp"
#include "pdf_check/checks.hpp"
#include "pdf_check/shrink.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/backend.hpp"
#include "testutil/circuits.hpp"

namespace {

using pdf::check::Check;
using pdf::check::Failure;

struct Options {
  std::size_t cases = 2000;
  std::uint64_t seed = 1;
  std::size_t threads = 1;
  std::string only_check;
  std::string repro_path = "pdf_check_repro.bench";
  std::string replay_path;
  bool verbose = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--cases N] [--seed S|from-git-sha] [--threads N]\n"
               "          [--backend %s] [--check NAME] [--repro FILE]\n"
               "          [--replay FILE] [--list-checks] [--list-backends]\n"
               "          [--verbose]\n",
               argv0, pdf::sim::backend_names().c_str());
  std::exit(2);
}

/// `--seed from-git-sha`: derive the seed from HEAD so every CI run fuzzes a
/// different region of the space while staying reproducible from the log.
std::uint64_t seed_from_git_sha() {
  FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return 1;
  char sha[128] = {0};
  const bool got = std::fgets(sha, sizeof sha, pipe) != nullptr;
  pclose(pipe);
  if (!got) {
    std::fprintf(stderr, "pdf_check: cannot read git HEAD, using seed 1\n");
    return 1;
  }
  std::uint64_t seed = 0xcbf29ce484222325ULL;  // FNV-1a over the hex digits
  for (const char* p = sha; *p != '\0' && *p != '\n'; ++p) {
    seed = (seed ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
  }
  return seed;
}

Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--cases") {
      o.cases = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      const std::string v = value();
      o.seed = v == "from-git-sha" ? seed_from_git_sha()
                                   : std::strtoull(v.c_str(), nullptr, 0);
    } else if (arg == "--threads") {
      o.threads = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--backend") {
      try {
        pdf::sim::select_backend(value());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "pdf_check: %s\n", e.what());
        std::exit(2);
      }
    } else if (arg == "--check") {
      o.only_check = value();
    } else if (arg == "--repro") {
      o.repro_path = value();
    } else if (arg == "--replay") {
      o.replay_path = value();
    } else if (arg == "--list-checks") {
      for (const Check& c : pdf::check::all_checks()) {
        std::printf("%s (every %zu cases)\n", c.name, c.stride);
      }
      std::exit(0);
    } else if (arg == "--list-backends") {
      for (pdf::sim::SimBackend* b : pdf::sim::all_backends()) {
        std::printf("%s\n", b->name());
      }
      std::exit(0);
    } else if (arg == "--verbose") {
      o.verbose = true;
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

/// Builds case number `i`: a seeded random circuit, 0-2 structural mutations,
/// and sometimes an extra observation point on an internal stem (so complete
/// paths can end at fanout nodes, which is where the branch line at the
/// output tap matters).
pdf::Netlist make_case(std::uint64_t case_seed) {
  pdf::Rng rng(case_seed);
  pdf::Netlist nl = pdf::testutil::random_small_netlist(rng);
  const std::uint64_t mutations = rng.below(3);
  for (std::uint64_t m = 0; m < mutations; ++m) {
    nl = pdf::testutil::mutate_structure(nl, rng);
  }
  if (rng.coin()) {
    std::vector<pdf::NodeId> stems;
    for (pdf::NodeId id = 0; id < nl.node_count(); ++id) {
      if (!nl.node(id).is_output && nl.node(id).type != pdf::GateType::Input &&
          !nl.node(id).fanout.empty()) {
        stems.push_back(id);
      }
    }
    if (!stems.empty()) {
      nl.mark_output(stems[rng.below(stems.size())]);
      nl.finalize();
    }
  }
  return nl;
}

int report_and_shrink(Failure f, const Options& o) {
  std::fprintf(stderr, "pdf_check: FAIL [%s] seed=0x%016llx\n  %s\n",
               f.check->name, static_cast<unsigned long long>(f.seed),
               f.message.c_str());
  const std::size_t before = f.netlist.node_count();
  pdf::check::shrink(f);
  pdf::check::write_repro(f, o.repro_path);
  std::fprintf(stderr,
               "  shrunk %zu -> %zu nodes; repro written to %s\n  %s\n",
               before, f.netlist.node_count(), o.repro_path.c_str(),
               f.message.c_str());
  return 1;
}

int replay(const Options& o) {
  const pdf::check::Replay r = pdf::check::read_repro(o.replay_path);
  const Check* check = pdf::check::find_check(r.check_name);
  if (check == nullptr) {
    std::fprintf(stderr, "pdf_check: unknown check '%s' in %s\n",
                 r.check_name.c_str(), o.replay_path.c_str());
    return 2;
  }
  if (const auto msg = check->fn(r.netlist, r.seed)) {
    std::fprintf(stderr, "pdf_check: replay FAIL [%s]\n  %s\n", check->name,
                 msg->c_str());
    return 1;
  }
  std::printf("pdf_check: replay of %s passes\n", o.replay_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_options(argc, argv);
  pdf::runtime::set_global_threads(o.threads);
  pdf::check::set_base_threads(o.threads);

  if (!o.replay_path.empty()) return replay(o);

  if (o.only_check != "" && pdf::check::find_check(o.only_check) == nullptr) {
    std::fprintf(stderr, "pdf_check: unknown check '%s'\n", o.only_check.c_str());
    return 2;
  }

  std::size_t executed = 0;
  for (std::size_t i = 0; i < o.cases; ++i) {
    const std::uint64_t case_seed = pdf::check::mix(o.seed, i);
    const pdf::Netlist nl = make_case(case_seed);
    for (const Check& c : pdf::check::all_checks()) {
      if (!o.only_check.empty() && o.only_check != c.name) continue;
      if (o.only_check.empty() && i % c.stride != 0) continue;
      ++executed;
      std::optional<std::string> msg;
      try {
        msg = c.fn(nl, case_seed);
      } catch (const std::exception& e) {
        msg = std::string("unexpected exception: ") + e.what();
      }
      if (msg) {
        return report_and_shrink(
            Failure{nl, &c, case_seed, std::move(*msg)}, o);
      }
    }
    if (o.verbose && (i + 1) % 500 == 0) {
      std::fprintf(stderr, "pdf_check: %zu/%zu cases, %zu checks run\n", i + 1,
                   o.cases, executed);
    }
  }
  std::printf("pdf_check: %zu cases, %zu check runs, all clean (seed 0x%llx)\n",
              o.cases, executed, static_cast<unsigned long long>(o.seed));
  return 0;
}
