#include "pdf_check/checks.hpp"

#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <vector>

#include "atpg/generator.hpp"
#include "atpg/test_pattern.hpp"
#include "base/rng.hpp"
#include "enrich/target_sets.hpp"
#include "faults/fault.hpp"
#include "faults/requirements.hpp"
#include "faults/screen.hpp"
#include "faultsim/batch_sim.hpp"
#include "faultsim/fault_sim.hpp"
#include "oracle/oracle.hpp"
#include "paths/enumerate.hpp"
#include "paths/path.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/backend.hpp"
#include "sim/triple_sim.hpp"
#include "store/serde.hpp"
#include "store/stage_cache.hpp"
#include "testutil/circuits.hpp"

namespace pdf::check {
namespace {

std::size_t g_base_threads = 1;

std::vector<TwoPatternTest> random_tests(const Netlist& nl, std::uint64_t seed,
                                         std::size_t count) {
  Rng rng(seed);
  std::vector<TwoPatternTest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(testutil::random_two_pattern_test(rng, nl.inputs().size()));
  }
  return out;
}

/// The oracle's exhaustive path set, or nullopt when the circuit has too many
/// paths to enumerate exhaustively (the case is skipped, not failed).
std::optional<std::vector<oracle::RefPath>> ref_paths(const Netlist& nl) {
  try {
    return oracle::all_complete_paths(nl, 20'000);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

/// Both faults of every reference path, capped (list order: both directions of
/// the first path, then the second, ... — the production faults_for_paths
/// convention).
std::vector<PathDelayFault> faults_of(std::span<const oracle::RefPath> paths,
                                      std::size_t max_paths) {
  std::vector<PathDelayFault> out;
  const std::size_t n = std::min(paths.size(), max_paths);
  out.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const bool rising : {true, false}) {
      PathDelayFault f;
      f.path.nodes = paths[i].nodes;
      f.rising_source = rising;
      f.length = paths[i].length;
      out.push_back(std::move(f));
    }
  }
  return out;
}

std::string describe_test(const TwoPatternTest& t) { return t.patterns_string(); }

std::string describe_fault(const Netlist& nl, const PathDelayFault& f) {
  return fault_to_string(nl, f);
}

// ---- differential: triple simulation ---------------------------------------

std::optional<std::string> check_sim(const Netlist& nl, std::uint64_t seed) {
  const auto tests = random_tests(nl, mix(seed, 0x51), 8);
  for (const auto& t : tests) {
    const std::vector<Triple> prod = simulate(nl, t.pi_values);
    const std::vector<Triple> ref = oracle::simulate(nl, t.pi_values);
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      if (prod[id] != ref[id]) {
        return "sim: node " + nl.node(id).name + " under " + describe_test(t) +
               ": production " + prod[id].str() + " vs oracle " + ref[id].str();
      }
    }
  }
  return std::nullopt;
}

// ---- differential: path enumeration ----------------------------------------

std::optional<std::string> check_paths(const Netlist& nl, std::uint64_t seed) {
  (void)seed;
  const auto ref = ref_paths(nl);
  if (!ref) return std::nullopt;

  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 2 * ref->size() + 16;  // never prunes
  const EnumerationResult full = enumerate_longest_paths(dm, cfg);
  if (full.paths.size() != ref->size()) {
    return "paths: production enumerated " + std::to_string(full.paths.size()) +
           " complete paths, oracle " + std::to_string(ref->size());
  }
  std::map<std::vector<NodeId>, int> by_nodes;
  for (const auto& p : *ref) by_nodes.emplace(p.nodes, p.length);
  int prev = full.paths.empty() ? 0 : full.paths.front().length;
  for (const auto& p : full.paths) {
    const auto it = by_nodes.find(p.path.nodes);
    if (it == by_nodes.end()) {
      return "paths: production path not in oracle set (or duplicated)";
    }
    if (it->second != p.length) {
      return "paths: length of a path: production " + std::to_string(p.length) +
             " vs oracle " + std::to_string(it->second);
    }
    if (p.length > prev) return "paths: result not sorted by descending length";
    prev = p.length;
  }

  // Bounded run: the survivors must be the K longest paths of the full set
  // (as a length multiset; ties may break either way).
  if (ref->size() >= 4) {
    EnumerationConfig bounded_cfg;
    bounded_cfg.max_faults = ref->size();  // about half the paths survive
    const EnumerationResult bounded = enumerate_longest_paths(dm, bounded_cfg);
    if (bounded.paths.size() > ref->size()) {
      return "paths: bounded run produced more paths than exist";
    }
    for (std::size_t i = 0; i < bounded.paths.size(); ++i) {
      if (bounded.paths[i].length != (*ref)[i].length) {
        return "paths: bounded survivor " + std::to_string(i) + " has length " +
               std::to_string(bounded.paths[i].length) +
               ", oracle's i-th longest is " + std::to_string((*ref)[i].length);
      }
    }
  }
  return std::nullopt;
}

// ---- differential: requirement construction and n_delta --------------------

std::optional<std::string> check_requirements(const Netlist& nl,
                                              std::uint64_t seed) {
  (void)seed;
  const auto ref = ref_paths(nl);
  if (!ref) return std::nullopt;
  const auto faults = faults_of(*ref, 60);

  std::vector<const PathDelayFault*> usable;
  std::vector<FaultRequirements> usable_reqs;
  for (const auto& f : faults) {
    const FaultRequirements prod = build_requirements(nl, f, Sensitization::Robust);
    const oracle::RefRequirements want = oracle::requirements_by_definition(nl, f);
    if (prod.conflicting != want.conflicting) {
      return "requirements: conflict flag of " + describe_fault(nl, f) +
             ": production " + std::to_string(prod.conflicting) + " vs oracle " +
             std::to_string(want.conflicting);
    }
    if (prod.conflicting) continue;
    if (prod.values.size() != want.values.size()) {
      return "requirements: " + describe_fault(nl, f) + ": production has " +
             std::to_string(prod.values.size()) + " requirements, oracle " +
             std::to_string(want.values.size());
    }
    for (std::size_t i = 0; i < prod.values.size(); ++i) {
      if (!(prod.values[i] == want.values[i])) {
        return "requirements: " + describe_fault(nl, f) + " line " +
               nl.node(want.values[i].line).name + ": production " +
               prod.values[i].value.str() + " vs oracle " +
               want.values[i].value.str();
      }
    }
    usable.push_back(&f);
    usable_reqs.push_back(prod);
  }

  // n_delta of the value-based heuristic against the set-based definition.
  for (std::size_t a = 0; a + 1 < usable.size() && a < 8; ++a) {
    RequirementSet set;
    set.add_all(usable_reqs[a].values);
    const auto& want = usable_reqs[a + 1].values;
    const std::size_t prod = set.delta_count(want);
    const std::size_t ref_delta = oracle::delta_count(set.items(), want);
    if (prod != ref_delta) {
      return "delta_count: production " + std::to_string(prod) + " vs oracle " +
             std::to_string(ref_delta) + " for " +
             describe_fault(nl, *usable[a + 1]) + " against " +
             describe_fault(nl, *usable[a]);
    }
  }
  return std::nullopt;
}

// ---- differential: fault simulation ----------------------------------------

std::optional<std::string> check_faultsim(const Netlist& nl, std::uint64_t seed) {
  const auto ref = ref_paths(nl);
  if (!ref) return std::nullopt;
  const auto all_faults = faults_of(*ref, 60);

  std::vector<TargetFault> targets;
  std::vector<PathDelayFault> kept;
  for (const auto& f : all_faults) {
    FaultRequirements reqs = build_requirements(nl, f, Sensitization::Robust);
    if (reqs.conflicting) continue;
    targets.push_back(TargetFault{f, std::move(reqs.values)});
    kept.push_back(f);
  }
  if (targets.empty()) return std::nullopt;

  const auto tests = random_tests(nl, mix(seed, 0xf5), 10);
  const FaultSimulator fsim(nl);
  const std::vector<bool> scalar = fsim.detects_any(tests, targets);
  const BatchSimulator psim(nl);  // the selected backend (--backend)
  const std::vector<bool> batched = psim.detects_any(tests, targets);
  const std::vector<bool> want = oracle::detects_any(nl, tests, kept);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (scalar[i] != want[i]) {
      return "faultsim: " + describe_fault(nl, kept[i]) + ": FaultSimulator " +
             std::to_string(scalar[i]) + " vs oracle " + std::to_string(want[i]);
    }
    if (batched[i] != want[i]) {
      return "faultsim: " + describe_fault(nl, kept[i]) + ": BatchSimulator[" +
             psim.backend().name() + "] " + std::to_string(batched[i]) +
             " vs oracle " + std::to_string(want[i]);
    }
  }
  return std::nullopt;
}

// ---- differential: cross-backend detection matrices ------------------------

std::optional<std::string> check_backends(const Netlist& nl,
                                          std::uint64_t seed) {
  // Every registered sim::SimBackend must produce the bit-identical
  // detection matrix. The fault list mixes per-line probe requirements
  // (every node x {steady0, steady1, rise, fall} — exercising each plane of
  // each line) with real path faults when the circuit is enumerable; the
  // test count crosses a word boundary so partial-lane masking is covered.
  std::vector<TargetFault> targets;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    for (const Triple& req : {kSteady0, kSteady1, kRise, kFall}) {
      TargetFault tf;
      tf.requirements = {{id, req}};
      targets.push_back(std::move(tf));
    }
  }
  if (const auto ref = ref_paths(nl)) {
    for (const auto& f : faults_of(*ref, 40)) {
      FaultRequirements reqs = build_requirements(nl, f, Sensitization::Robust);
      if (reqs.conflicting) continue;
      targets.push_back(TargetFault{f, std::move(reqs.values)});
    }
  }

  // 300 tests: crosses the 64-lane word boundary with a partial tail AND the
  // 256-lane avx2 boundary, and fills more than one 64-lane subword of every
  // wide word (the lane-shuffle mutation class only shows above lane 64).
  const auto tests = random_tests(nl, mix(seed, 0xbe), 300);
  const auto backends = sim::all_backends();
  std::vector<DetectionMatrix> matrices;
  matrices.reserve(backends.size());
  for (sim::SimBackend* backend : backends) {
    const BatchSimulator fsim(nl, backend);
    matrices.push_back(fsim.detection_matrix(tests, targets));
  }
  // All registered pairs, not just scalar-vs-rest: a defect shared by two
  // packed backends but absent from scalar still shows up as scalar-vs-X,
  // while a defect in exactly one of them is named by the tightest pair.
  for (std::size_t i = 0; i < backends.size(); ++i) {
    for (std::size_t j = i + 1; j < backends.size(); ++j) {
      if (matrices[i] == matrices[j]) continue;
      const char* a = backends[i]->name();
      const char* b = backends[j]->name();
      for (std::size_t f = 0; f < targets.size(); ++f) {
        for (std::size_t t = 0; t < tests.size(); ++t) {
          if (matrices[i].bit(f, t) == matrices[j].bit(f, t)) continue;
          const auto& req = targets[f].requirements.front();
          return std::string("backends: ") + a + " says " +
                 std::to_string(matrices[i].bit(f, t)) + ", " + b + " says " +
                 std::to_string(matrices[j].bit(f, t)) + " for requirement " +
                 nl.node(req.line).name + "=" + req.value.str() + " (fault " +
                 std::to_string(f) + ") under " + describe_test(tests[t]);
        }
      }
      return std::string("backends: ") + a + " and " + b +
             " matrices differ (shape mismatch)";
    }
  }
  return std::nullopt;
}

// ---- ATPG: every generated test detects its primary target -----------------

std::optional<std::string> check_atpg(const Netlist& nl, std::uint64_t seed) {
  TargetSetConfig tcfg;
  tcfg.n_p = 60;
  tcfg.n_p0 = 10;
  const TargetSets ts = build_target_sets(nl, tcfg);
  if (ts.p0.empty()) return std::nullopt;

  GeneratorConfig gcfg;
  gcfg.seed = mix(seed, 0xa7);
  const GenerationResult res = generate_tests(nl, ts.p0, ts.p1, gcfg);
  if (res.primary_targets.size() != res.tests.size()) {
    return "atpg: primary_targets has " +
           std::to_string(res.primary_targets.size()) + " entries for " +
           std::to_string(res.tests.size()) + " tests";
  }
  for (std::size_t i = 0; i < res.tests.size(); ++i) {
    const std::size_t target = res.primary_targets[i];
    if (target >= ts.p0.size()) return "atpg: primary target index out of range";
    if (!oracle::detects(nl, res.tests[i], ts.p0[target].fault)) {
      return "atpg: generated test " + describe_test(res.tests[i]) +
             " does not robustly detect its primary target " +
             describe_fault(nl, ts.p0[target].fault) + " per the oracle";
    }
  }

  // The generator's detection flags are a claim about the whole test set;
  // the oracle must agree fault by fault.
  for (std::size_t set = 0; set < 2; ++set) {
    const auto& targets = set == 0 ? ts.p0 : ts.p1;
    const auto& flags = set == 0 ? res.detected_p0 : res.detected_p1;
    if (targets.empty() || flags.size() != targets.size()) continue;
    std::vector<PathDelayFault> faults;
    for (const auto& t : targets) faults.push_back(t.fault);
    const std::vector<bool> want = oracle::detects_any(nl, res.tests, faults);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (flags[i] != want[i]) {
        return "atpg: detection flag of " + describe_fault(nl, faults[i]) +
               " (set P" + std::to_string(set) + "): generator " +
               std::to_string(flags[i]) + " vs oracle " + std::to_string(want[i]);
      }
    }
  }
  return std::nullopt;
}

// ---- coverage accounting ----------------------------------------------------

std::optional<std::string> check_coverage(const Netlist& nl, std::uint64_t seed) {
  const auto ref = ref_paths(nl);
  if (!ref) return std::nullopt;

  TargetSetConfig tcfg;
  tcfg.n_p = 60;
  tcfg.n_p0 = 10;
  const TargetSets ts = build_target_sets(nl, tcfg);
  if (ts.p0.empty()) return std::nullopt;
  std::vector<PathDelayFault> f0, f1;
  for (const auto& t : ts.p0) f0.push_back(t.fault);
  for (const auto& t : ts.p1) f1.push_back(t.fault);

  const auto tests = random_tests(nl, mix(seed, 0xc0), 8);
  const UnionCoverage cov =
      store::cached_union_coverage(nullptr, nl, tests, ts.p0, ts.p1, tcfg);
  const std::size_t want0 = oracle::count_detected(nl, tests, f0);
  const std::size_t want1 = oracle::count_detected(nl, tests, f1);
  if (cov.p0_detected != want0 || cov.p1_detected != want1) {
    return "coverage: union coverage P0 " + std::to_string(cov.p0_detected) +
           "/P1 " + std::to_string(cov.p1_detected) + " vs oracle " +
           std::to_string(want0) + "/" + std::to_string(want1);
  }
  if (cov.p0_total != ts.p0.size() || cov.p1_total != ts.p1.size()) {
    return "coverage: totals do not match the target sets";
  }

  // Metamorphic: adding a test never lowers the union coverage.
  std::size_t prev = 0;
  for (std::size_t k = 0; k <= tests.size(); ++k) {
    const UnionCoverage c = store::cached_union_coverage(
        nullptr, nl, std::span<const TwoPatternTest>(tests).first(k), ts.p0,
        ts.p1, tcfg);
    const std::size_t detected = c.p0_detected + c.p1_detected;
    if (detected < prev) {
      return "coverage: adding test " + std::to_string(k) +
             " lowered union coverage from " + std::to_string(prev) + " to " +
             std::to_string(detected);
    }
    prev = detected;
  }
  return std::nullopt;
}

// ---- metamorphic: pruning yields a prefix of the fault-length sequence -----

std::optional<std::string> check_prune_prefix(const Netlist& nl,
                                              std::uint64_t seed) {
  (void)seed;
  const auto ref = ref_paths(nl);
  if (!ref || ref->size() < 4) return std::nullopt;

  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = 2 * ref->size() + 16;
  const EnumerationResult full = enumerate_longest_paths(dm, cfg);

  EnumerationConfig pruned_cfg;
  pruned_cfg.max_faults = std::max<std::size_t>(4, ref->size());
  const EnumerationResult pruned = enumerate_longest_paths(dm, pruned_cfg);
  if (pruned.paths.size() > full.paths.size()) {
    return "prune: bounded enumeration returned more paths than the full run";
  }
  // Fault lengths (two faults per path) of the pruned run must be the leading
  // entries of the full run's descending sequence.
  for (std::size_t i = 0; i < pruned.paths.size(); ++i) {
    if (pruned.paths[i].length != full.paths[i].length) {
      return "prune: pruned fault-length sequence diverges at path " +
             std::to_string(i) + ": " + std::to_string(pruned.paths[i].length) +
             " vs " + std::to_string(full.paths[i].length);
    }
  }
  return std::nullopt;
}

// ---- execution-condition determinism ---------------------------------------

struct GenerationOutputs {
  std::vector<TwoPatternTest> tests;
  std::vector<std::vector<bool>> detected;
  std::vector<std::size_t> primary_targets;
};

GenerationOutputs outputs_of(const GenerationResult& r) {
  return GenerationOutputs{r.tests, r.detected, r.primary_targets};
}

std::optional<std::string> diff_outputs(const GenerationOutputs& a,
                                        const GenerationOutputs& b,
                                        const std::string& what) {
  if (a.tests.size() != b.tests.size()) {
    return what + ": test counts differ (" + std::to_string(a.tests.size()) +
           " vs " + std::to_string(b.tests.size()) + ")";
  }
  for (std::size_t i = 0; i < a.tests.size(); ++i) {
    if (a.tests[i].pi_values != b.tests[i].pi_values) {
      return what + ": test " + std::to_string(i) + " differs (" +
             describe_test(a.tests[i]) + " vs " + describe_test(b.tests[i]) + ")";
    }
  }
  if (a.detected != b.detected) return what + ": detection flags differ";
  if (a.primary_targets != b.primary_targets) {
    return what + ": primary target attribution differs";
  }
  return std::nullopt;
}

std::optional<std::string> check_threads(const Netlist& nl, std::uint64_t seed) {
  TargetSetConfig tcfg;
  tcfg.n_p = 60;
  tcfg.n_p0 = 10;
  const TargetSets ts = build_target_sets(nl, tcfg);
  GeneratorConfig gcfg;
  gcfg.seed = mix(seed, 0x7d);
  const auto tests = random_tests(nl, mix(seed, 0x7e), 8);

  const auto run_all = [&] {
    GenerationOutputs out = outputs_of(generate_tests(nl, ts.p0, ts.p1, gcfg));
    const BatchSimulator psim(nl);
    const std::vector<bool> d = psim.detects_any(tests, ts.p0);
    out.detected.push_back(d);
    return out;
  };

  runtime::set_global_threads(1);
  const GenerationOutputs serial = run_all();
  runtime::set_global_threads(g_base_threads > 1 ? g_base_threads : 4);
  const GenerationOutputs parallel = run_all();
  runtime::set_global_threads(g_base_threads);
  return diff_outputs(serial, parallel, "threads: --threads 1 vs N");
}

std::optional<std::string> check_store(const Netlist& nl, std::uint64_t seed) {
  TargetSetConfig tcfg;
  tcfg.n_p = 60;
  tcfg.n_p0 = 10;
  const TargetSets ts = build_target_sets(nl, tcfg);
  GeneratorConfig gcfg;
  gcfg.seed = mix(seed, 0x3a);

  namespace fs = std::filesystem;
  char dirname[64];
  std::snprintf(dirname, sizeof dirname, "pdf_check_store_%016llx",
                static_cast<unsigned long long>(mix(seed, 0x3b)));
  const fs::path dir = fs::temp_directory_path() / dirname;
  fs::remove_all(dir);

  std::optional<std::string> failure;
  {
    store::StageCache cache(dir);
    const GenerationResult cold =
        store::cached_generate(&cache, nl, ts.p0, ts.p1, tcfg, gcfg);
    const GenerationResult warm =
        store::cached_generate(&cache, nl, ts.p0, ts.p1, tcfg, gcfg);
    const GenerationResult plain = generate_tests(nl, ts.p0, ts.p1, gcfg);
    failure = diff_outputs(outputs_of(cold), outputs_of(plain),
                           "store: cold cache vs uncached");
    if (!failure) {
      failure = diff_outputs(outputs_of(warm), outputs_of(cold),
                             "store: warm cache vs cold");
    }

    if (!failure) {
      // Serde round-trip of the result record (the same codec the cache used).
      store::ByteWriter w;
      store::encode(w, cold);
      store::ByteReader r(w.view());
      const GenerationResult back = store::decode_generation_result(r);
      failure = diff_outputs(outputs_of(back), outputs_of(cold),
                             "store: serde round-trip");
    }
  }
  fs::remove_all(dir);
  return failure;
}

constexpr Check kChecks[] = {
    {"sim_vs_oracle", 1, check_sim},
    {"paths_vs_oracle", 1, check_paths},
    {"requirements_vs_oracle", 1, check_requirements},
    {"faultsim_vs_oracle", 1, check_faultsim},
    {"backends_agree", 2, check_backends},
    {"atpg_primary_targets", 2, check_atpg},
    {"coverage_accounting", 2, check_coverage},
    {"prune_prefix", 2, check_prune_prefix},
    {"threads_determinism", 25, check_threads},
    {"store_cold_warm", 50, check_store},
};

}  // namespace

std::span<const Check> all_checks() { return kChecks; }

void set_base_threads(std::size_t threads) { g_base_threads = threads; }

const Check* find_check(const std::string& name) {
  for (const Check& c : kChecks) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace pdf::check
