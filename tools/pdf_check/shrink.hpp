// Greedy delta-debugging of failing pdf_check cases.
//
// A failing case is fully determined by (netlist, check, seed): checks derive
// everything else from the seed. The shrinker repeatedly tries structural
// simplifications (bypass a gate, drop an unused input) and keeps any variant
// on which the same check still fails, producing a near-minimal netlist. The
// result is written as a self-contained repro file — .bench text plus the
// check name and seed in header comments — that `pdf_check --replay` reruns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netlist/netlist.hpp"
#include "pdf_check/checks.hpp"

namespace pdf::check {

struct Failure {
  Netlist netlist;
  const Check* check = nullptr;
  std::uint64_t seed = 0;
  std::string message;
};

/// Shrinks `f.netlist` while `f.check` keeps failing with `f.seed`; updates
/// the netlist and message in place. Deterministic and bounded (at most
/// O(nodes^2) check replays).
void shrink(Failure& f);

/// Writes the repro file; returns the message of the final failure state.
void write_repro(const Failure& f, const std::string& path);

struct Replay {
  Netlist netlist;
  std::string check_name;
  std::uint64_t seed = 0;
};

/// Parses a repro file written by write_repro. Throws std::runtime_error on
/// malformed input.
Replay read_repro(const std::string& path);

}  // namespace pdf::check
