// pdf_bench_diff — regression gate over two pdf.bench_record/1 files.
//
//   pdf_bench_diff BASELINE CURRENT [--threshold PCT]
//
// Compares the normalized perf records that `--bench-json` emits (see
// bench/common.hpp and `micro_engines backends`). The two records must
// describe the same experiment (bench, circuit, backend, threads,
// throughput_counter — any mismatch is exit 2: the comparison would be
// meaningless). wall_ns and throughput_per_sec are then compared with a
// noise threshold (default 20%): a slowdown or throughput drop beyond it
// exits 1, so a CI step can gate on `pdf_bench_diff old.json new.json`.
// Improvements and within-noise drift exit 0.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using pdf::obs::Json;

Json load_record(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const Json doc = Json::parse(buf.str());
  if (!doc.is_object() || !doc.contains("schema") ||
      doc.at("schema").as_string() != "pdf.bench_record/1") {
    throw std::runtime_error(path + " is not a pdf.bench_record/1 document");
  }
  return doc;
}

/// Identity fields that must match for the perf comparison to mean anything.
const char* const kIdentity[] = {"bench", "circuit", "backend",
                                 "throughput_counter"};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json CURRENT.json [--threshold PCT]\n"
               "exit 0: within noise or improved; 1: regression; 2: usage/"
               "mismatched records\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, cur_path;
  double threshold_pct = 20.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::atof(argv[++i]);
    } else if (argv[i][0] == '-') {
      usage(argv[0]);
    } else if (base_path.empty()) {
      base_path = argv[i];
    } else if (cur_path.empty()) {
      cur_path = argv[i];
    } else {
      usage(argv[0]);
    }
  }
  if (base_path.empty() || cur_path.empty() || threshold_pct < 0) {
    usage(argv[0]);
  }

  Json base, cur;
  try {
    base = load_record(base_path);
    cur = load_record(cur_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdf_bench_diff: %s\n", e.what());
    return 2;
  }

  for (const char* key : kIdentity) {
    const std::string b = base.contains(key) ? base.at(key).as_string() : "";
    const std::string c = cur.contains(key) ? cur.at(key).as_string() : "";
    if (b != c) {
      std::fprintf(stderr,
                   "pdf_bench_diff: records disagree on %s ('%s' vs '%s'); "
                   "not comparable\n",
                   key, b.c_str(), c.c_str());
      return 2;
    }
  }
  if (base.at("threads").as_int() != cur.at("threads").as_int()) {
    std::fprintf(stderr, "pdf_bench_diff: thread counts differ (%lld vs %lld)"
                         "; not comparable\n",
                 static_cast<long long>(base.at("threads").as_int()),
                 static_cast<long long>(cur.at("threads").as_int()));
    return 2;
  }

  bool regressed = false;
  // Higher-is-worse metric: wall time.
  {
    const double b = base.at("wall_ns").as_double();
    const double c = cur.at("wall_ns").as_double();
    const double pct = b > 0 ? (c / b - 1.0) * 100.0 : 0.0;
    std::printf("wall_ns            %14.0f -> %14.0f  %+7.2f%%\n", b, c, pct);
    if (pct > threshold_pct) regressed = true;
  }
  // Higher-is-better metric: throughput.
  {
    const double b = base.at("throughput_per_sec").as_double();
    const double c = cur.at("throughput_per_sec").as_double();
    const double pct = b > 0 ? (c / b - 1.0) * 100.0 : 0.0;
    std::printf("throughput_per_sec %14.3e -> %14.3e  %+7.2f%%\n", b, c, pct);
    if (pct < -threshold_pct) regressed = true;
  }
  {
    const double b = base.at("cache_hit_rate").as_double();
    const double c = cur.at("cache_hit_rate").as_double();
    std::printf("cache_hit_rate     %14.3f -> %14.3f  (informational)\n", b,
                c);
  }

  if (regressed) {
    std::fprintf(stderr, "pdf_bench_diff: REGRESSION beyond %.1f%% noise "
                         "threshold\n",
                 threshold_pct);
    return 1;
  }
  std::printf("within %.1f%% noise threshold\n", threshold_pct);
  return 0;
}
