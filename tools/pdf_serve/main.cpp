// pdf_serve — the enrichment daemon.
//
// Accepts line-delimited JSON jobs (see src/serve/protocol.hpp) over a Unix
// domain socket, runs them through the shared serve::Server (admission
// control, worker shards, StageCache warm tier), and streams one response
// line per request back on the same connection. SIGTERM/SIGINT drain
// gracefully: admissions close immediately, in-flight and queued jobs finish
// and their responses flush before the process exits 0.
//
//   pdf_serve --socket /tmp/pdf.sock [--concurrency N] [--queue-depth N]
//             [--threads N] [--backend NAME] [--store DIR]
//             [--no-store] [--manifest-dir DIR] [--retry-after-ms N]
//             [--metrics] [--log-level debug|info|warn|error|off]
//             [--slow-job-ms N]
//   pdf_serve --once FILE|-  ... same job flags; reads request lines from
//             FILE (or stdin), writes response lines to stdout. This is the
//             single-shot path the CI serve-smoke job diffs daemon responses
//             against: both go through serve::run_job, so a warm daemon
//             answer is byte-identical to a --once answer for the same job.
//
// Protocol-level `shutdown` requests trigger the same drain as SIGTERM.
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <poll.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "base/error.hpp"
#include "obs/log.hpp"
#include "runtime/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket_io.hpp"
#include "sim/backend.hpp"

namespace {

using namespace pdf;

struct Flags {
  std::string socket_path = "pdf_serve.sock";
  std::size_t concurrency = 2;
  std::size_t queue_depth = 64;
  std::size_t threads = 1;
  std::uint64_t retry_after_ms = 50;
  std::string backend;  // empty = the process-wide capability default
  bool use_store = true;
  std::string store_dir = ".artifact-store";
  std::string manifest_dir;
  bool metrics = false;
  std::uint64_t slow_job_ms = 0;  // 0 = no slow-job trace capture
  bool once = false;
  std::string once_file;  // "-" = stdin
};

[[noreturn]] void usage(const char* argv0, const std::string& err) {
  std::fprintf(stderr, "pdf_serve: %s\n", err.c_str());
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--concurrency N] [--queue-depth N]"
               " [--threads N] [--backend NAME] [--store DIR | --no-store]"
               " [--manifest-dir DIR] [--retry-after-ms N] [--metrics]"
               " [--log-level LEVEL] [--slow-job-ms N] [--once FILE|-]\n",
               argv0);
  std::exit(2);
}

Flags parse_flags(int argc, char** argv) {
  Flags f;
  auto need = [&](int i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket") f.socket_path = need(i), ++i;
    else if (a == "--concurrency") f.concurrency = std::stoul(need(i)), ++i;
    else if (a == "--queue-depth") f.queue_depth = std::stoul(need(i)), ++i;
    else if (a == "--threads") f.threads = std::stoul(need(i)), ++i;
    else if (a == "--retry-after-ms") f.retry_after_ms = std::stoull(need(i)), ++i;
    else if (a == "--backend") f.backend = need(i), ++i;
    else if (a == "--store") f.store_dir = need(i), f.use_store = true, ++i;
    else if (a == "--no-store") f.use_store = false;
    else if (a == "--manifest-dir") f.manifest_dir = need(i), ++i;
    else if (a == "--metrics") f.metrics = true;
    else if (a == "--slow-job-ms") f.slow_job_ms = std::stoull(need(i)), ++i;
    else if (a == "--log-level") {
      try {
        obs::set_log_level(obs::parse_log_level(need(i)));
      } catch (const ConfigError& e) {
        usage(argv[0], e.what());
      }
      ++i;
    }
    else if (a == "--once") f.once = true, f.once_file = need(i), ++i;
    else usage(argv[0], "unknown flag " + a);
  }
  if (f.queue_depth == 0) usage(argv[0], "--queue-depth must be > 0");
  // Without --backend, run (and label manifests/logs with) whatever the
  // capability dispatch selected for this host.
  if (f.backend.empty()) f.backend = sim::selected_backend().name();
  return f;
}

// ---- signal plumbing (self-pipe) -------------------------------------------

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; a full pipe just means a wakeup is
  // already pending.
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &byte, 1);
}

// ---- --once mode -----------------------------------------------------------

int run_once(const Flags& flags) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (flags.once_file != "-") {
    file.open(flags.once_file);
    if (!file) {
      std::fprintf(stderr, "pdf_serve: cannot open %s\n",
                   flags.once_file.c_str());
      return 2;
    }
    in = &file;
  }

  serve::JobContext ctx;
  std::optional<store::StageCache> cache;
  if (flags.use_store) {
    cache.emplace(flags.store_dir);
    ctx.cache = &*cache;
    ctx.store_dir = flags.store_dir;
  }
  ctx.backend = flags.backend;
  ctx.manifest_dir = flags.manifest_dir;

  bool all_ok = true;
  std::string line;
  std::uint64_t serial = 0;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    serve::Response resp;
    try {
      const serve::Request req = serve::parse_request(line);
      switch (req.kind) {
        case serve::RequestKind::Enrich:
        case serve::RequestKind::Basic:
          resp = serve::run_job(req, ctx, ++serial);
          break;
        case serve::RequestKind::Ping:
          resp.id = req.id;
          resp.result["pong"] = true;
          resp.result["protocol"] = serve::kProtocolVersion;
          break;
        default:
          resp.id = req.id;
          resp.status = serve::Status::Error;
          resp.error.kind = "config_error";
          resp.error.message = std::string(serve::kind_name(req.kind)) +
                               " requests need a running daemon";
          break;
      }
    } catch (...) {
      resp.id = serve::salvage_request_id(line);
      resp.status = serve::Status::Error;
      resp.error = serve::classify_error(std::current_exception());
    }
    if (resp.status != serve::Status::Ok) all_ok = false;
    std::cout << resp.to_line() << "\n";
  }
  std::cout.flush();
  return all_ok ? 0 : 1;
}

// ---- daemon mode -----------------------------------------------------------

/// One accepted client connection: a reader thread plus the shared state the
/// asynchronous response writers need. The fd is closed only after every
/// submitted job has responded (pending == 0), so a worker can never write
/// into a recycled fd.
struct Connection {
  int fd = -1;
  std::mutex write_mu;
  std::mutex pending_mu;
  std::condition_variable pending_cv;
  std::size_t pending = 0;
  std::atomic<bool> open{true};
  std::thread reader;
};

void send_response(const std::shared_ptr<Connection>& conn,
                   const serve::Response& resp) {
  std::lock_guard<std::mutex> lk(conn->write_mu);
  if (!conn->open.load(std::memory_order_relaxed)) return;
  if (!serve::write_all(conn->fd, resp.to_line() + "\n")) {
    // Client went away; keep draining silently — jobs still complete and
    // populate the shared cache. Shut the read side too so the reader
    // thread unblocks promptly.
    conn->open.store(false, std::memory_order_relaxed);
    serve::shutdown_fd(conn->fd);
  }
}

void connection_main(std::shared_ptr<Connection> conn, serve::Server* server) {
  serve::LineReader reader(conn->fd);
  std::string line;
  while (reader.read_line(&line)) {
    if (line.empty()) continue;
    serve::Request req;
    try {
      req = serve::parse_request(line);
    } catch (...) {
      serve::Response resp;
      resp.id = serve::salvage_request_id(line);
      resp.status = serve::Status::Error;
      resp.error = serve::classify_error(std::current_exception());
      send_response(conn, resp);
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(conn->pending_mu);
      ++conn->pending;
    }
    server->submit(std::move(req), [conn](serve::Response resp) {
      send_response(conn, resp);
      {
        std::lock_guard<std::mutex> lk(conn->pending_mu);
        --conn->pending;
      }
      conn->pending_cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lk(conn->pending_mu);
    conn->pending_cv.wait(lk, [&] { return conn->pending == 0; });
  }
  std::lock_guard<std::mutex> lk(conn->write_mu);
  conn->open.store(false, std::memory_order_relaxed);
  serve::close_fd(conn->fd);
  conn->fd = -1;
}

int run_daemon(const Flags& flags) {
  if (!serve::sockets_supported()) {
    std::fprintf(stderr, "pdf_serve: no socket support on this platform\n");
    return 2;
  }
  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pdf_serve: pipe");
    return 2;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::string err;
  const int listen_fd = serve::listen_unix(flags.socket_path, 64, &err);
  if (listen_fd < 0) {
    std::fprintf(stderr, "pdf_serve: %s\n", err.c_str());
    return 2;
  }

  serve::ServerConfig cfg;
  cfg.concurrency = flags.concurrency;
  cfg.queue_depth = flags.queue_depth;
  cfg.retry_after_ms = flags.retry_after_ms;
  cfg.store_dir = flags.use_store ? flags.store_dir : "";
  cfg.manifest_dir = flags.manifest_dir;
  cfg.backend = flags.backend;
  cfg.shutdown_hook = [] { on_signal(0); };
  cfg.slow_job_ms = flags.slow_job_ms;
  serve::Server server(cfg);

  std::fprintf(stderr,
               "pdf_serve: listening on %s (concurrency %zu, queue %zu, "
               "backend %s, store %s)\n",
               flags.socket_path.c_str(), flags.concurrency, flags.queue_depth,
               flags.backend.c_str(),
               flags.use_store ? flags.store_dir.c_str() : "off");
  PDF_LOG(Info, "serve.listening")
      .str("socket", flags.socket_path)
      .num("concurrency", static_cast<std::uint64_t>(flags.concurrency))
      .num("queue_depth", static_cast<std::uint64_t>(flags.queue_depth))
      .str("backend", flags.backend)
      .num("slow_job_ms", flags.slow_job_ms)
      .str("log_level", obs::log_level_name(obs::log_level()));

  std::vector<std::shared_ptr<Connection>> connections;
  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::perror("pdf_serve: poll");
      break;
    }
    if (fds[1].revents) break;  // SIGTERM/SIGINT/shutdown request
    if (fds[0].revents) {
      const int fd = serve::accept_connection(listen_fd);
      if (fd < 0) continue;
      PDF_LOG(Debug, "serve.connection.accepted").num("fd", std::int64_t{fd});
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      conn->reader = std::thread(connection_main, conn, &server);
      connections.push_back(std::move(conn));
    }
  }

  // Graceful drain: stop accepting, let admitted jobs finish and flush their
  // responses, then unblock the readers and join them.
  std::fprintf(stderr, "pdf_serve: draining (%zu queued)\n",
               server.queue_depth());
  PDF_LOG(Info, "serve.signal")
      .num("queued", static_cast<std::uint64_t>(server.queue_depth()))
      .num("connections", static_cast<std::uint64_t>(connections.size()));
  serve::close_fd(listen_fd);
  ::unlink(flags.socket_path.c_str());
  server.drain();
  for (auto& conn : connections) {
    {
      // write_mu guards fd against the reader's own close-on-EOF path
      // (shutdown_fd is a no-op once the reader set fd = -1).
      std::lock_guard<std::mutex> lk(conn->write_mu);
      serve::shutdown_fd(conn->fd);
    }
    conn->reader.join();
  }
  if (flags.metrics) {
    std::fprintf(stderr, "%s", runtime::Metrics::global().dump().c_str());
  }
  std::fprintf(stderr, "pdf_serve: drained cleanly\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_log_level_from_env();  // --log-level below overrides
  const Flags flags = parse_flags(argc, argv);
  try {
    sim::select_backend(flags.backend);
  } catch (const std::invalid_argument& e) {
    usage(argv[0], e.what());
  }
  runtime::set_global_threads(flags.threads);
  if (flags.once) return run_once(flags);
  return run_daemon(flags);
}
