// pdf_load — client and load generator for the pdf_serve daemon.
//
// Opens --clients connections, pushes --jobs enrichment jobs through them
// (each client works synchronously: send one line, read one line), honours
// admission-control rejections by backing off retry_after_ms and resending,
// and reports throughput, client-observed latency percentiles (p50/p90/p99
// from a sharded runtime::Histogram), rejection/retry counts, and the
// server-attributed cache hit/miss totals. With --stats-every S a background
// poller sends `stats` (pdf.admin/1) on its own connection every S seconds
// and prints the live server-side queue depth and run-time percentiles.
//
// A --hot-fraction of the jobs share one (circuit, seed) pair — after the
// first completion these are pure StageCache hits and measure the warm
// path; the rest get distinct seeds and measure cold generation.
//
// --verify recomputes every distinct job in-process through the same
// serve::run_job the daemon uses (cache disabled) and compares the
// deterministic `result` objects byte-for-byte; any mismatch is a protocol
// determinism bug and exits nonzero.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/metrics.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/socket_io.hpp"
#include "sim/backend.hpp"

namespace {

using namespace pdf;

struct Flags {
  std::string socket_path = "pdf_serve.sock";
  std::size_t jobs = 32;
  std::size_t clients = 4;
  std::vector<std::string> circuits = {"s27"};
  std::size_t n_p = 400;
  std::size_t n_p0 = 60;
  std::uint64_t seed_base = 1;
  double hot_fraction = 0.5;
  std::size_t max_retries = 200;
  double stats_every = 0.0;  // seconds between live stats polls; 0 = off
  bool basic = false;
  bool verify = false;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0, const std::string& err) {
  std::fprintf(stderr, "pdf_load: %s\n", err.c_str());
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--jobs N] [--clients N]"
               " [--circuits a,b] [--np N] [--np0 N] [--seed-base S]"
               " [--hot-fraction F] [--max-retries N] [--stats-every SECS]"
               " [--basic] [--verify] [--quiet]\n",
               argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto comma = s.find(',', pos);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Flags parse_flags(int argc, char** argv) {
  Flags f;
  auto need = [&](int i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket") f.socket_path = need(i), ++i;
    else if (a == "--jobs") f.jobs = std::stoul(need(i)), ++i;
    else if (a == "--clients") f.clients = std::stoul(need(i)), ++i;
    else if (a == "--circuits") f.circuits = split_csv(need(i)), ++i;
    else if (a == "--np") f.n_p = std::stoul(need(i)), ++i;
    else if (a == "--np0") f.n_p0 = std::stoul(need(i)), ++i;
    else if (a == "--seed-base") f.seed_base = std::stoull(need(i)), ++i;
    else if (a == "--hot-fraction") f.hot_fraction = std::stod(need(i)), ++i;
    else if (a == "--max-retries") f.max_retries = std::stoul(need(i)), ++i;
    else if (a == "--stats-every") f.stats_every = std::stod(need(i)), ++i;
    else if (a == "--basic") f.basic = true;
    else if (a == "--verify") f.verify = true;
    else if (a == "--quiet") f.quiet = true;
    else usage(argv[0], "unknown flag " + a);
  }
  if (f.jobs == 0 || f.clients == 0) usage(argv[0], "--jobs/--clients must be > 0");
  if (f.circuits.empty()) usage(argv[0], "--circuits must name a circuit");
  return f;
}

/// Deterministic job mix: job j is "hot" (shared circuit+seed — warm cache
/// after the first run) when j * hot_fraction wraps, otherwise cold with a
/// distinct seed.
serve::Request make_request(const Flags& flags, std::size_t j) {
  serve::Request req;
  req.id = static_cast<std::int64_t>(j + 1);
  req.kind = flags.basic ? serve::RequestKind::Basic
                         : serve::RequestKind::Enrich;
  const bool hot =
      static_cast<std::size_t>(static_cast<double>(j) * flags.hot_fraction) !=
      static_cast<std::size_t>(static_cast<double>(j + 1) * flags.hot_fraction);
  req.circuit = flags.circuits[j % flags.circuits.size()];
  req.target.n_p = flags.n_p;
  req.target.n_p0 = flags.n_p0;
  req.gen.seed = hot ? flags.seed_base : flags.seed_base + 1 + j;
  return req;
}

struct Results {
  std::mutex mu;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;  // Rejected responses observed
  std::uint64_t retries = 0;   // resends after a rejection
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// job index -> result line, for --verify.
  std::map<std::size_t, std::string> result_bytes;
  std::vector<std::string> failures;
};

/// Per-request client-observed latency in microseconds. A sharded
/// runtime::Histogram, so the client threads record lock-free and the
/// summary reads exact merged percentiles after the join.
runtime::Metrics::Histogram& latency_hist() {
  static auto& h = runtime::Metrics::global().histogram("load.latency_us");
  return h;
}

void client_main(const Flags& flags, std::size_t client, Results* out) {
  std::string err;
  const int fd = serve::connect_unix(flags.socket_path, &err);
  if (fd < 0) {
    std::lock_guard<std::mutex> lk(out->mu);
    out->failures.push_back("client " + std::to_string(client) + ": " + err);
    return;
  }
  serve::LineReader reader(fd);

  for (std::size_t j = client; j < flags.jobs; j += flags.clients) {
    const serve::Request req = make_request(flags, j);
    const std::string line = serve::request_json(req).dump() + "\n";
    const auto t0 = std::chrono::steady_clock::now();
    bool done = false;
    for (std::size_t attempt = 0; !done && attempt <= flags.max_retries;
         ++attempt) {
      std::string resp_line;
      if (!serve::write_all(fd, line) || !reader.read_line(&resp_line)) {
        std::lock_guard<std::mutex> lk(out->mu);
        out->failures.push_back("client " + std::to_string(client) +
                                ": connection lost");
        serve::close_fd(fd);
        return;
      }
      serve::Response resp;
      try {
        resp = serve::parse_response(resp_line);
      } catch (const obs::JsonError& e) {
        std::lock_guard<std::mutex> lk(out->mu);
        out->failures.push_back("client " + std::to_string(client) +
                                ": bad response: " + e.what());
        serve::close_fd(fd);
        return;
      }
      switch (resp.status) {
        case serve::Status::Rejected: {
          // Admission pushback: honour the hint and resend.
          {
            std::lock_guard<std::mutex> lk(out->mu);
            ++out->rejected;
            if (attempt < flags.max_retries) ++out->retries;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(
              resp.retry_after_ms ? resp.retry_after_ms : 10));
          break;
        }
        case serve::Status::Ok: {
          const auto us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          latency_hist().record(static_cast<std::uint64_t>(us));
          std::lock_guard<std::mutex> lk(out->mu);
          ++out->ok;
          out->cache_hits += resp.cache_hits;
          out->cache_misses += resp.cache_misses;
          out->result_bytes.emplace(j, resp.result.dump());
          done = true;
          break;
        }
        default: {
          std::lock_guard<std::mutex> lk(out->mu);
          ++out->errors;
          out->failures.push_back("job " + std::to_string(req.id) + ": [" +
                                  resp.error.kind + "] " +
                                  resp.error.message);
          done = true;
          break;
        }
      }
    }
    if (!done) {
      std::lock_guard<std::mutex> lk(out->mu);
      ++out->errors;
      out->failures.push_back("job " + std::to_string(req.id) +
                              ": retry budget exhausted");
    }
  }
  serve::close_fd(fd);
}

/// Polls the daemon's `stats` admin request on its own connection every
/// --stats-every seconds and prints live server-side p50/p99 to stderr.
/// Runs until `stop` flips; read-only, so it never perturbs the job mix.
void stats_poller(const Flags& flags, std::atomic<bool>* stop) {
  std::string err;
  const int fd = serve::connect_unix(flags.socket_path, &err);
  if (fd < 0) {
    std::fprintf(stderr, "pdf_load: stats poller: %s\n", err.c_str());
    return;
  }
  serve::LineReader reader(fd);
  serve::Request req;
  req.id = -1;
  req.kind = serve::RequestKind::Stats;
  const std::string line = serve::request_json(req).dump() + "\n";

  while (!stop->load(std::memory_order_relaxed)) {
    std::string resp_line;
    if (!serve::write_all(fd, line) || !reader.read_line(&resp_line)) break;
    try {
      const serve::Response resp = serve::parse_response(resp_line);
      const obs::Json& run =
          resp.result.at("latency").at("serve.latency.run_ns");
      std::fprintf(
          stderr,
          "pdf_load: [stats] queue %lld done %lld run_ms p50 %.2f p99 %.2f\n",
          static_cast<long long>(resp.result.at("queue").at("depth").as_int()),
          static_cast<long long>(
              resp.result.at("jobs").at("completed").as_int()),
          static_cast<double>(run.at("p50").as_int()) / 1e6,
          static_cast<double>(run.at("p99").as_int()) / 1e6);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pdf_load: stats poller: %s\n", e.what());
    }
    // Sleep in short slices so the poller stops promptly after the join.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(flags.stats_every);
    while (!stop->load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  serve::close_fd(fd);
}

/// Recomputes each distinct job in-process (no cache) and compares result
/// bytes. Distinct jobs are memoized locally so hot duplicates verify once.
std::size_t verify_results(const Flags& flags, const Results& results) {
  serve::JobContext ctx;
  ctx.backend = sim::selected_backend().name();
  std::map<std::string, std::string> expected;  // request line -> result bytes
  std::size_t mismatches = 0;
  for (const auto& [j, bytes] : results.result_bytes) {
    const serve::Request req = make_request(flags, j);
    const std::string key = serve::request_json(req).dump();
    auto it = expected.find(key);
    if (it == expected.end()) {
      const serve::Response ref = serve::run_job(req, ctx);
      it = expected.emplace(key, ref.result.dump()).first;
    }
    if (it->second != bytes) {
      ++mismatches;
      std::fprintf(stderr, "pdf_load: VERIFY MISMATCH job %zu\n  want %s\n  got  %s\n",
                   j, it->second.c_str(), bytes.c_str());
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = parse_flags(argc, argv);
  if (!serve::sockets_supported()) {
    std::fprintf(stderr, "pdf_load: no socket support on this platform\n");
    return 2;
  }

  Results results;
  std::atomic<bool> stop_poller{false};
  std::thread poller;
  if (flags.stats_every > 0.0) {
    poller = std::thread(stats_poller, flags, &stop_poller);
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(flags.clients);
  for (std::size_t c = 0; c < flags.clients; ++c) {
    clients.emplace_back(client_main, flags, c, &results);
  }
  for (auto& t : clients) t.join();
  if (poller.joinable()) {
    stop_poller.store(true, std::memory_order_relaxed);
    poller.join();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (const auto& f : results.failures) {
    std::fprintf(stderr, "pdf_load: %s\n", f.c_str());
  }

  std::size_t mismatches = 0;
  if (flags.verify) mismatches = verify_results(flags, results);

  if (!flags.quiet) {
    std::printf("jobs %zu ok %llu errors %llu rejected %llu retries %llu\n",
                flags.jobs, static_cast<unsigned long long>(results.ok),
                static_cast<unsigned long long>(results.errors),
                static_cast<unsigned long long>(results.rejected),
                static_cast<unsigned long long>(results.retries));
    std::printf("wall %.3fs throughput %.1f jobs/s\n", secs,
                secs > 0 ? static_cast<double>(results.ok) / secs : 0.0);
    const auto lat = latency_hist().snapshot();
    std::printf("latency_ms p50 %.2f p90 %.2f p99 %.2f max %.2f\n",
                static_cast<double>(lat.p50()) / 1e3,
                static_cast<double>(lat.p90()) / 1e3,
                static_cast<double>(lat.p99()) / 1e3,
                static_cast<double>(lat.max) / 1e3);
    std::printf("cache hits %llu misses %llu\n",
                static_cast<unsigned long long>(results.cache_hits),
                static_cast<unsigned long long>(results.cache_misses));
    if (flags.verify) {
      std::printf("verify %s\n", mismatches == 0 ? "ok" : "MISMATCH");
    }
  }

  const bool ok = results.errors == 0 && results.failures.empty() &&
                  results.ok == flags.jobs && mismatches == 0;
  return ok ? 0 : 1;
}
