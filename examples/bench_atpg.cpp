// bench_atpg: a complete command-line ATPG for path delay faults — the tool
// a downstream user would run on their own netlists.
//
// Usage:
//   ./examples/bench_atpg --circuit s1423_like [options]
//   ./examples/bench_atpg --bench my_design.bench [options]
//
// Options:
//   --np N          fault budget for path enumeration      (default 4000)
//   --np0 N         minimum size of the must-detect set P0 (default 300)
//   --heuristic H   uncomp | arbit | length | values       (default values)
//   --no-enrich     basic generation (P0 only)
//   --seed S        RNG seed                               (default 1)
//   --out FILE      write the two-pattern tests to FILE
//   --list          list registry circuits and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "atpg/application.hpp"
#include "atpg/test_io.hpp"
#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/combinational.hpp"
#include "netlist/transform.hpp"
#include "paths/count.hpp"

using namespace pdf;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of bench_atpg.cpp for usage\n",
               msg);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit, bench_file, out_file;
  TargetSetConfig tcfg;
  tcfg.n_p = 4000;
  tcfg.n_p0 = 300;
  GeneratorConfig gcfg;
  bool enrich = true;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--circuit") {
      circuit = next();
    } else if (a == "--bench") {
      bench_file = next();
    } else if (a == "--np") {
      tcfg.n_p = std::strtoull(next(), nullptr, 10);
    } else if (a == "--np0") {
      tcfg.n_p0 = std::strtoull(next(), nullptr, 10);
    } else if (a == "--seed") {
      gcfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--out") {
      out_file = next();
    } else if (a == "--no-enrich") {
      enrich = false;
    } else if (a == "--heuristic") {
      const std::string h = next();
      if (h == "uncomp") gcfg.heuristic = CompactionHeuristic::None;
      else if (h == "arbit") gcfg.heuristic = CompactionHeuristic::Arbitrary;
      else if (h == "length") gcfg.heuristic = CompactionHeuristic::Length;
      else if (h == "values") gcfg.heuristic = CompactionHeuristic::Value;
      else usage(("unknown heuristic " + h).c_str());
    } else if (a == "--list") {
      for (const auto& info : benchmark_catalog()) {
        std::printf("%-14s %-8s %s\n", info.name.c_str(),
                    info.paper_counterpart.c_str(), info.description.c_str());
      }
      return 0;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  if (circuit.empty() == bench_file.empty()) {
    usage("exactly one of --circuit / --bench is required");
  }

  CombinationalCircuit cc;
  if (circuit.empty()) {
    CombinationalCircuit raw = extract_combinational(parse_bench_file(bench_file));
    // XOR decomposition preserves node names; re-resolve the pseudo ids in
    // the decomposed netlist by name.
    std::vector<std::string> ppi_names, ppo_names;
    for (NodeId id : raw.pseudo_inputs) {
      ppi_names.push_back(raw.netlist.node(id).name);
    }
    for (NodeId id : raw.pseudo_outputs) {
      ppo_names.push_back(raw.netlist.node(id).name);
    }
    cc.netlist = decompose_xor(raw.netlist);
    for (const auto& n : ppi_names) cc.pseudo_inputs.push_back(cc.netlist.id_of(n));
    for (const auto& n : ppo_names) cc.pseudo_outputs.push_back(cc.netlist.id_of(n));
  } else {
    cc.netlist = benchmark_circuit(circuit);
  }
  Netlist& nl = cc.netlist;
  const NetlistStats st = stats_of(nl);
  const PathCounts pc = count_paths(nl);
  std::printf("circuit %s: %zu inputs, %zu outputs, %zu gates, depth %d, "
              "%s%llu paths\n",
              nl.name().c_str(), st.inputs, st.outputs, st.gates, st.depth,
              pc.saturated ? ">= " : "",
              static_cast<unsigned long long>(pc.total));

  const EnrichmentWorkbench wb(nl, tcfg);
  const TargetSets& ts = wb.targets();
  std::printf("targets: |P0| = %zu (length >= %d), |P1| = %zu "
              "(%zu enumerated paths, %zu undetectable screened)\n",
              ts.p0.size(), ts.cutoff_length, ts.p1.size(),
              ts.enumerated_paths,
              ts.screen.conflict_dropped + ts.screen.implication_dropped);
  if (ts.p0.empty()) {
    std::printf("no robustly testable target faults; nothing to do\n");
    return 0;
  }

  const GenerationResult r = enrich ? wb.run_enriched(gcfg) : wb.run_basic(gcfg);
  const UnionCoverage c = wb.coverage_of(r);
  std::printf("%s generation (%s): %zu tests in %.2fs\n",
              enrich ? "enriched" : "basic", heuristic_name(gcfg.heuristic),
              r.tests.size(), r.stats.seconds);
  std::printf("coverage: P0 %zu/%zu, P1 %zu/%zu\n", c.p0_detected, c.p0_total,
              c.p1_detected, c.p1_total);

  // Scan-application classification (meaningful when the design had state).
  if (!cc.pseudo_inputs.empty()) {
    const TestApplicationAnalyzer analyzer(cc);
    const ApplicationStats ap = analyzer.classify(r.tests);
    std::printf("application: %zu broadside-compatible, %zu skewed-load, "
                "%zu need enhanced scan (of %zu)\n",
                ap.broadside, ap.skewed_load, ap.enhanced_only, ap.total);
  }

  if (!out_file.empty()) {
    write_tests_file(out_file, nl, r.tests);
    std::printf("wrote %zu tests to %s\n", r.tests.size(), out_file.c_str());
  }
  return 0;
}
