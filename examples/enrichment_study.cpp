// Enrichment study: the paper's headline experiment on one circuit — how
// much of the next-to-longest-path fault set P1 do you get for free?
//
// Usage:
//   ./examples/enrichment_study [circuit] [N_P] [N_P0] [seed]
//
// Compares three strategies at identical budgets:
//   basic/uncomp — no compaction (the size baseline),
//   basic/values — compact tests for P0 only, P1 only by accident,
//   enriched     — compact tests for P0 with P1 as secondary targets.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "enrich/enrichment.hpp"
#include "gen/registry.hpp"
#include "report/table.hpp"

using namespace pdf;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s953_like";
  TargetSetConfig tcfg;
  tcfg.n_p = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4000;
  tcfg.n_p0 = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 300;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  const Netlist nl = benchmark_circuit(name);
  const EnrichmentWorkbench wb(nl, tcfg);
  const TargetSets& ts = wb.targets();
  std::printf("circuit %s: |P0| = %zu (len >= %d), |P1| = %zu\n\n",
              name.c_str(), ts.p0.size(), ts.cutoff_length, ts.p1.size());

  Table t("strategies at N_P=" + std::to_string(tcfg.n_p) +
          ", N_P0=" + std::to_string(tcfg.n_p0));
  t.columns({"strategy", "tests", "P0 det", "P1 det", "union det", "seconds"});

  auto add = [&](const char* label, const GenerationResult& r) {
    const UnionCoverage c = wb.coverage_of(r);
    t.row(label, r.tests.size(), c.p0_detected, c.p1_detected,
          c.union_detected(), r.stats.seconds);
  };

  GeneratorConfig g;
  g.seed = seed;
  g.heuristic = CompactionHeuristic::None;
  add("basic/uncomp", wb.run_basic(g));
  g.heuristic = CompactionHeuristic::Value;
  add("basic/values", wb.run_basic(g));
  add("enriched", wb.run_enriched(g));

  t.print(std::cout);
  std::printf(
      "\nreading: 'enriched' should match 'basic/values' in tests while\n"
      "detecting far more of P1 — the paper's free-quality improvement.\n");
  return 0;
}
