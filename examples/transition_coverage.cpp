// Transition-fault coverage via longest-path selection: pair every line with
// the longest structural path through it (line-cover), generate robust tests
// for those path faults, and report per-line transition coverage — the
// strongest single-path guarantee for lumped gate-delay defects.
//
// Usage: ./examples/transition_coverage [circuit] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "atpg/generator.hpp"
#include "faults/transition.hpp"
#include "gen/registry.hpp"
#include "report/coverage.hpp"

using namespace pdf;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "b04_like";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const Netlist nl = benchmark_circuit(name);
  const LineDelayModel dm(nl);
  const TransitionTargets t = build_transition_targets(nl, dm);
  std::printf("%s: %zu line-transition targets over %zu covering path faults "
              "(%zu robustly untestable through their longest path)\n",
              name.c_str(), t.targets.size(), t.faults.size(), t.untestable);
  if (t.faults.empty()) return 0;

  GeneratorConfig g;
  g.seed = seed;
  const GenerationResult r = generate_tests(nl, t.faults, {}, g);
  const std::size_t covered = covered_transitions(t, r.detected_p0);
  std::printf("generated %zu tests: %zu / %zu transitions covered (%.1f%%), "
              "%zu / %zu covering faults detected\n",
              r.tests.size(), covered, t.targets.size(),
              100.0 * static_cast<double>(covered) /
                  static_cast<double>(t.targets.size()),
              r.detected_p0_count(), t.faults.size());

  const CoverageBreakdown b = coverage_by_length(t.faults, r.detected_p0);
  std::printf("covering-fault coverage by path length: %s\n",
              coverage_summary(b, 6).c_str());
  return 0;
}
