// Line-cover study: the alternative P0 criterion the paper cites (its
// reference [3], Li-Reddy-Sahni): one longest path through every line. This
// example selects that path set, builds its faults, generates enriched tests
// and prints the per-length coverage breakdown.
//
// Usage: ./examples/line_cover_study [circuit] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "atpg/generator.hpp"
#include "faults/fault.hpp"
#include "faults/screen.hpp"
#include "gen/registry.hpp"
#include "paths/line_cover.hpp"
#include "report/coverage.hpp"
#include "report/table.hpp"

using namespace pdf;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s953_like";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  const Netlist nl = benchmark_circuit(name);
  const LineDelayModel dm(nl);
  const auto cover = select_line_cover_paths(dm);
  std::printf("circuit %s: %zu line-cover paths (one longest path through\n"
              "every line), lengths %d..%d\n",
              name.c_str(), cover.size(),
              cover.empty() ? 0 : cover.back().length,
              cover.empty() ? 0 : cover.front().length);

  // Faults of the cover paths, screened.
  std::vector<PathDelayFault> faults;
  for (const auto& cp : cover) {
    faults.push_back({cp.path, true, cp.length});
    faults.push_back({cp.path, false, cp.length});
  }
  ScreenStats st;
  const std::vector<TargetFault> targets =
      screen_faults(nl, std::move(faults), &st);
  std::printf("faults: %zu total, %zu provably undetectable, %zu targets\n\n",
              st.input_faults, st.conflict_dropped + st.implication_dropped,
              st.kept);
  if (targets.empty()) return 0;

  GeneratorConfig g;
  g.seed = seed;
  const GenerationResult r = generate_tests(nl, targets, {}, g);
  std::printf("generated %zu tests, detected %zu / %zu cover faults\n",
              r.tests.size(), r.detected_p0_count(), targets.size());

  const CoverageBreakdown b = coverage_by_length(targets, r.detected_p0);
  Table t("coverage by path length");
  t.columns({"length", "detected", "total", "ratio"});
  for (const auto& bucket : b.buckets) {
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.2f", bucket.ratio());
    t.row(bucket.length, bucket.detected, bucket.total, ratio);
  }
  t.print(std::cout);
  std::printf("\nsummary: %s\n", coverage_summary(b).c_str());
  return 0;
}
