// Quickstart: the complete pipeline on the paper's own example circuit, s27.
//
//   1. load a netlist and extract its combinational core,
//   2. enumerate the longest paths and build the target sets P0 / P1,
//   3. run the enrichment generator,
//   4. inspect the tests and the faults they detect.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "enrich/enrichment.hpp"
#include "faultsim/fault_sim.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/combinational.hpp"

using namespace pdf;

int main() {
  // s27 ships with the library (it is printed in the paper); any .bench file
  // works the same way via parse_bench_file + extract_combinational.
  const Netlist seq = parse_bench_string(s27_bench_text(), "s27");
  const Netlist nl = extract_combinational(seq).netlist;
  const NetlistStats st = stats_of(nl);
  std::printf("s27 combinational core: %zu inputs, %zu outputs, %zu gates, "
              "%zu lines, depth %d\n",
              st.inputs, st.outputs, st.gates, st.lines, st.depth);

  // Target sets. s27 is tiny, so small budgets: P = the 40 longest-fault
  // budget, P0 = everything on the top lengths until at least 8 faults.
  TargetSetConfig tcfg;
  tcfg.n_p = 40;
  tcfg.n_p0 = 8;
  const EnrichmentWorkbench wb(nl, tcfg);
  const TargetSets& ts = wb.targets();
  std::printf("\ntarget sets: |P0| = %zu (length >= %d), |P1| = %zu, "
              "%zu undetectable faults screened out\n",
              ts.p0.size(), ts.cutoff_length, ts.p1.size(),
              ts.screen.conflict_dropped + ts.screen.implication_dropped);

  // Enriched generation: P0 drives the test count, P1 rides along for free.
  GeneratorConfig gcfg;
  gcfg.seed = 2002;
  const GenerationResult r = wb.run_enriched(gcfg);
  const UnionCoverage cov = wb.coverage_of(r);
  std::printf("\ngenerated %zu two-pattern tests\n", r.tests.size());
  std::printf("  P0 coverage:      %zu / %zu\n", cov.p0_detected, cov.p0_total);
  std::printf("  P1 coverage:      %zu / %zu (free)\n", cov.p1_detected,
              cov.p1_total);

  // Show each test and what it detects.
  FaultSimulator fsim(nl);
  for (std::size_t i = 0; i < r.tests.size(); ++i) {
    std::printf("\ntest %zu: %s\n", i, r.tests[i].patterns_string().c_str());
    const auto d0 = fsim.detects(r.tests[i], ts.p0);
    const auto d1 = fsim.detects(r.tests[i], ts.p1);
    for (std::size_t k = 0; k < ts.p0.size(); ++k) {
      if (d0[k]) {
        std::printf("  detects [P0] %s\n",
                    fault_to_string(nl, ts.p0[k].fault).c_str());
      }
    }
    for (std::size_t k = 0; k < ts.p1.size(); ++k) {
      if (d1[k]) {
        std::printf("  detects [P1] %s\n",
                    fault_to_string(nl, ts.p1[k].fault).c_str());
      }
    }
  }
  return 0;
}
