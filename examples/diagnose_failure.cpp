// Failure diagnosis walkthrough: inject a slow-gate defect, apply the test
// set on the "tester" (the timed waveform simulator), collect the pass/fail
// signature, and run signature-matching diagnosis to recover the slow paths.
// Optionally dumps the failing test's waveforms as VCD for a waveform
// viewer.
//
// Usage: ./examples/diagnose_failure [circuit] [seed] [vcd-file]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "enrich/enrichment.hpp"
#include "faultsim/defect_mc.hpp"
#include "faultsim/diagnosis.hpp"
#include "gen/registry.hpp"
#include "sim/vcd.hpp"

using namespace pdf;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "b03_like";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  const std::string vcd_path = argc > 3 ? argv[3] : "";

  const Netlist nl = benchmark_circuit(name);
  TargetSetConfig tcfg;
  tcfg.n_p = 1200;
  tcfg.n_p0 = 150;
  const EnrichmentWorkbench wb(nl, tcfg);
  GeneratorConfig gcfg;
  gcfg.seed = seed;
  const GenerationResult gen = wb.run_enriched(gcfg);
  std::printf("%s: %zu tests for %zu+%zu target faults\n\n", name.c_str(),
              gen.tests.size(), wb.targets().p0.size(), wb.targets().p1.size());

  // --- the "tester" side: a chip with one slow gate -------------------------
  DefectMcConfig mcfg;
  mcfg.nominal_gate_delay = 1;
  mcfg.clock_period = 1;
  DefectSimulator probe(nl, mcfg);
  int settle = 0;
  for (const auto& t : gen.tests) settle = std::max(settle, probe.nominal_settle(t));
  mcfg.clock_period = settle + 1;
  DefectSimulator tester(nl, mcfg);

  // Pick a gate on a detected P0 path as the defect site.
  Rng rng(seed);
  const auto& p0 = wb.targets().p0;
  Defect defect;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const auto& tf = p0[rng.below(p0.size())];
    if (!gen.detected_p0[&tf - p0.data()]) continue;
    const auto& nodes = tf.fault.path.nodes;
    const NodeId g = nodes[1 + rng.below(nodes.size() - 1)];
    if (nl.node(g).type == GateType::Input) continue;
    defect = {g, mcfg.clock_period};
    break;
  }
  std::printf("injected defect: +%d delay on gate %s\n", defect.extra_delay,
              nl.node(defect.gate).name.c_str());

  std::vector<bool> failing(gen.tests.size(), false);
  std::size_t n_fail = 0;
  for (std::size_t t = 0; t < gen.tests.size(); ++t) {
    failing[t] = tester.catches(gen.tests[t], defect);
    n_fail += failing[t];
  }
  std::printf("tester signature: %zu of %zu tests fail\n\n", n_fail,
              gen.tests.size());

  // --- the diagnosis side ---------------------------------------------------
  const Diagnoser diag(nl, gen.tests, p0);
  const DiagnosisResult result = diag.diagnose(failing);
  std::printf("top candidates (of %zu with any overlap):\n",
              result.candidates.size());
  for (std::size_t i = 0; i < result.candidates.size() && i < 8; ++i) {
    const auto& c = result.candidates[i];
    const auto& f = p0[c.fault_index].fault;
    const bool through = std::find(f.path.nodes.begin(), f.path.nodes.end(),
                                   defect.gate) != f.path.nodes.end();
    std::printf("  #%zu %s exact=%s explained=%zu missed=%zu contradicted=%zu"
                "%s\n",
                i, fault_to_string(nl, f).c_str(), c.exact() ? "yes" : "no",
                c.explained, c.missed, c.contradicted,
                through ? "  <-- passes through the defect" : "");
  }

  // --- optional waveform dump of the first failing test ---------------------
  if (!vcd_path.empty() && n_fail > 0) {
    std::size_t first_fail = 0;
    while (!failing[first_fail]) ++first_fail;
    std::vector<int> delays(nl.node_count(), mcfg.nominal_gate_delay);
    for (NodeId pi : nl.inputs()) delays[pi] = 0;
    delays[defect.gate] += defect.extra_delay;
    std::vector<int> sw(nl.inputs().size(), 0);
    const auto wf =
        simulate_timed(nl, gen.tests[first_fail].pi_values, sw, delays);
    std::ofstream out(vcd_path);
    write_vcd(out, nl, wf, "failing test " + std::to_string(first_fail));
    std::printf("\nwrote defective waveforms of test %zu to %s\n", first_fail,
                vcd_path.c_str());
  }
  return 0;
}
