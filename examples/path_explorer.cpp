// Path explorer: structural path analysis of a circuit — the front half of
// the paper's pipeline, useful on its own for timing-oriented exploration.
//
// Usage:
//   ./examples/path_explorer [circuit-or-bench-file] [n_paths]
//
// `circuit-or-bench-file` is a registry name (default s1423_like) or a path
// to a .bench file (sequential files are reduced to their combinational
// core; XOR gates are decomposed).
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/combinational.hpp"
#include "netlist/transform.hpp"
#include "paths/distance.hpp"
#include "paths/enumerate.hpp"
#include "paths/length_stats.hpp"
#include "report/table.hpp"

using namespace pdf;

namespace {

Netlist load(const std::string& what) {
  if (has_benchmark(what)) return benchmark_circuit(what);
  const Netlist seq = parse_bench_file(what);
  return decompose_xor(extract_combinational(seq).netlist);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string what = argc > 1 ? argv[1] : "s1423_like";
  const std::size_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  const Netlist nl = load(what);
  const NetlistStats st = stats_of(nl);
  std::printf("circuit %s: %zu inputs, %zu outputs, %zu gates, %zu lines, "
              "depth %d\n\n",
              nl.name().c_str(), st.inputs, st.outputs, st.gates, st.lines,
              st.depth);

  const LineDelayModel dm(nl);
  EnumerationConfig cfg;
  cfg.max_faults = budget;
  const EnumerationResult r = enumerate_longest_paths(dm, cfg);
  std::printf("enumerated the %zu longest paths (budget %zu faults, %zu steps%s)\n\n",
              r.paths.size(), budget, r.steps,
              r.step_limit_hit ? ", truncated" : "");

  // Length histogram, Table-2 style.
  std::vector<int> lengths;
  for (const auto& p : r.paths) lengths.push_back(p.length);
  const LengthProfile profile(lengths);
  Table hist("path length profile (top 25)");
  hist.columns({"i", "L_i", "n_p(L_i)", "N_p(L_i)"});
  const auto& buckets = profile.buckets();
  for (std::size_t i = 0; i < buckets.size() && i < 25; ++i) {
    hist.row(i, buckets[i].length, buckets[i].count, buckets[i].cumulative);
  }
  hist.print(std::cout);

  // The longest paths themselves.
  std::printf("\nlongest paths:\n");
  for (std::size_t i = 0; i < r.paths.size() && i < 10; ++i) {
    std::printf("  [len %d] %s\n", r.paths[i].length,
                path_to_string(nl, r.paths[i].path).c_str());
  }

  // Distance summary: which lines dominate the slack picture.
  const auto d = distances_to_outputs(dm);
  int unreachable = 0;
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (d[id] == kUnreachable) ++unreachable;
  }
  std::printf("\n%d node(s) cannot reach any output\n", unreachable);
  return 0;
}
